// Package rank implements CodeRank, the W5 "code search" described in
// §3.2: a PageRank-style computation over the module dependency graph.
//
// Where PageRank uses the hyperlink graph to infer a page's suitability,
// CodeRank uses two kinds of dependency edges among modules — library
// imports, and HTML-embed references observed by the gateway — to infer
// which modules (and hence developers) are widely trusted. "Applications
// written by top-ranked developers would receive top placement in
// searches by users for new features."
//
// The implementation is the standard damped power iteration with
// dangling-node redistribution; import edges weigh more than embed
// edges (linking a library into your trusted computing base is a
// stronger vote than referencing a URL). Editor endorsements (§3.2) can
// be folded in as a personalization vector.
package rank

import (
	"math"
	"sort"
	"strings"

	"w5/internal/registry"
)

// Weights for the two §3.2 edge kinds.
const (
	ImportWeight = 1.0
	EmbedWeight  = 0.5
)

// Options tunes the computation.
type Options struct {
	// Damping is the probability of following an edge rather than
	// teleporting (default 0.85, as in the PageRank paper).
	Damping float64
	// MaxIters bounds the power iteration (default 250, enough for the
	// default Epsilon at the default Damping: 0.85^250 ≈ 2e-18).
	MaxIters int
	// Epsilon is the L1 convergence threshold (default 1e-9).
	Epsilon float64
	// Personalization, if non-nil, biases teleportation toward the
	// given nodes (e.g. editor-endorsed modules). Values need not be
	// normalized; missing nodes get zero teleport mass.
	Personalization map[string]float64
	// Warm, if non-nil, seeds the iteration vector from a previous
	// result's scores instead of the uniform vector. The fixpoint of
	// the power iteration does not depend on the starting vector, so a
	// warm start changes only the iteration count — after a small graph
	// delta the previous scores are nearly stationary and the
	// recompute converges in a handful of steps (the incremental
	// recompute package rank's Index relies on). Nodes missing from
	// Warm start at zero; if Warm covers no node, the uniform start is
	// used.
	Warm map[string]float64
}

func (o *Options) defaults() {
	if o.Damping <= 0 || o.Damping >= 1 {
		o.Damping = 0.85
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 250
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-9
	}
}

// Result is the outcome of a CodeRank computation.
type Result struct {
	// Scores maps module name to rank; scores sum to 1.
	Scores map[string]float64
	// Iterations is how many power-iteration steps ran before
	// convergence (or MaxIters).
	Iterations int
	// Converged reports whether Epsilon was reached within MaxIters.
	Converged bool
}

// Compute runs CodeRank over the given nodes and edges. Nodes with no
// outgoing edges (dangling modules) distribute their mass uniformly,
// per the standard construction. Unknown edge endpoints are ignored.
func Compute(nodes []string, edges []registry.Edge, opts Options) Result {
	opts.defaults()
	n := len(nodes)
	if n == 0 {
		return Result{Scores: map[string]float64{}, Converged: true}
	}
	idx := make(map[string]int, n)
	for i, name := range nodes {
		idx[name] = i
	}

	// Build the weighted adjacency: out[i] = list of (target, weight).
	type arc struct {
		to int
		w  float64
	}
	out := make([][]arc, n)
	outSum := make([]float64, n)
	for _, e := range edges {
		i, ok1 := idx[e.From]
		j, ok2 := idx[e.To]
		if !ok1 || !ok2 || i == j {
			continue // self-votes don't count
		}
		w := ImportWeight
		if e.Kind == "embed" {
			w = EmbedWeight
		}
		out[i] = append(out[i], arc{to: j, w: w})
		outSum[i] += w
	}

	// Teleport vector.
	tele := make([]float64, n)
	if opts.Personalization == nil {
		for i := range tele {
			tele[i] = 1.0 / float64(n)
		}
	} else {
		var total float64
		for name, v := range opts.Personalization {
			if i, ok := idx[name]; ok && v > 0 {
				tele[i] = v
				total += v
			}
		}
		if total == 0 {
			for i := range tele {
				tele[i] = 1.0 / float64(n)
			}
		} else {
			for i := range tele {
				tele[i] /= total
			}
		}
	}

	rank := make([]float64, n)
	next := make([]float64, n)
	var warmTotal float64
	if opts.Warm != nil {
		for i, name := range nodes {
			if s := opts.Warm[name]; s > 0 {
				rank[i] = s
				warmTotal += s
			}
		}
	}
	if warmTotal > 0 {
		// Renormalize: new nodes entered at zero, departed mass drops.
		for i := range rank {
			rank[i] /= warmTotal
		}
	} else {
		for i := range rank {
			rank[i] = 1.0 / float64(n)
		}
	}

	d := opts.Damping
	iters := 0
	converged := false
	for ; iters < opts.MaxIters; iters++ {
		// Dangling mass redistributes via the teleport vector.
		var dangling float64
		for i := 0; i < n; i++ {
			if outSum[i] == 0 {
				dangling += rank[i]
			}
		}
		for i := 0; i < n; i++ {
			next[i] = (1-d)*tele[i] + d*dangling*tele[i]
		}
		for i := 0; i < n; i++ {
			if outSum[i] == 0 {
				continue
			}
			share := d * rank[i] / outSum[i]
			for _, a := range out[i] {
				next[a.to] += share * a.w
			}
		}
		var delta float64
		for i := 0; i < n; i++ {
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < opts.Epsilon {
			iters++
			converged = true
			break
		}
	}

	scores := make(map[string]float64, n)
	for i, name := range nodes {
		scores[name] = rank[i]
	}
	return Result{Scores: scores, Iterations: iters, Converged: converged}
}

// Ranked is a module with its score, for sorted presentation.
type Ranked struct {
	Module string
	Score  float64
}

// Order sorts modules by descending score (ties broken by name for
// determinism).
func Order(scores map[string]float64) []Ranked {
	out := make([]Ranked, 0, len(scores))
	for m, s := range scores {
		out = append(out, Ranked{Module: m, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Module < out[j].Module
	})
	return out
}

// SearchRanked performs the full §3.2 "code search": filter the
// registry by query, rank all modules by CodeRank (with endorsement
// personalization), and return matches ordered by rank.
func SearchRanked(reg *registry.Registry, query string, opts Options) []Ranked {
	matches := reg.Search(query)
	if len(matches) == 0 {
		return nil
	}
	nodes := reg.Modules()
	if opts.Personalization == nil {
		// Endorsed modules teleport more: editors seed trust.
		pers := make(map[string]float64)
		any := false
		for _, m := range nodes {
			if n := len(reg.Endorsements(m)); n > 0 {
				pers[m] = float64(n)
				any = true
			}
		}
		if any {
			// Mix: uniform base + endorsement boost, so unendorsed
			// modules keep nonzero teleport mass.
			for _, m := range nodes {
				pers[m] = pers[m] + 1
			}
			opts.Personalization = pers
		}
	}
	res := Compute(nodes, reg.DependencyGraph(), opts)
	matchSet := make(map[string]bool, len(matches))
	for _, v := range matches {
		matchSet[v.Module] = true
	}
	var out []Ranked
	for _, r := range Order(res.Scores) {
		if matchSet[r.Module] {
			out = append(out, r)
		}
	}
	return out
}

// DeveloperRank aggregates module scores by developer: "which
// developers are widely trusted" (§3.2). Returns descending order.
func DeveloperRank(reg *registry.Registry, opts Options) []Ranked {
	nodes := reg.Modules()
	res := Compute(nodes, reg.DependencyGraph(), opts)
	byDev := make(map[string]float64)
	for _, m := range nodes {
		v, err := reg.Get(m, "")
		if err != nil {
			continue
		}
		byDev[v.Developer] += res.Scores[m]
	}
	out := make([]Ranked, 0, len(byDev))
	for dev, s := range byDev {
		out = append(out, Ranked{Module: dev, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return strings.Compare(out[i].Module, out[j].Module) < 0
	})
	return out
}
