package rank

import (
	"math"
	"math/rand"
	"testing"

	"w5/internal/registry"
	"w5/internal/wvm"
)

func edge(from, to, kind string) registry.Edge {
	return registry.Edge{From: from, To: to, Kind: kind}
}

func TestEmptyGraph(t *testing.T) {
	res := Compute(nil, nil, Options{})
	if len(res.Scores) != 0 || !res.Converged {
		t.Errorf("empty graph: %+v", res)
	}
}

func TestSingleNode(t *testing.T) {
	res := Compute([]string{"a"}, nil, Options{})
	if math.Abs(res.Scores["a"]-1.0) > 1e-9 {
		t.Errorf("single node score = %v", res.Scores["a"])
	}
}

func TestScoresSumToOne(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	edges := []registry.Edge{
		edge("a", "b", "import"), edge("b", "c", "import"),
		edge("c", "a", "embed"), edge("d", "a", "import"),
	}
	res := Compute(nodes, edges, Options{})
	var sum float64
	for _, s := range res.Scores {
		sum += s
	}
	if math.Abs(sum-1.0) > 1e-6 {
		t.Errorf("scores sum to %v, want 1", sum)
	}
	if !res.Converged {
		t.Error("small graph did not converge")
	}
}

func TestUniformCycleIsUniform(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	edges := []registry.Edge{
		edge("a", "b", "import"), edge("b", "c", "import"), edge("c", "a", "import"),
	}
	res := Compute(nodes, edges, Options{})
	for _, n := range nodes {
		if math.Abs(res.Scores[n]-1.0/3) > 1e-6 {
			t.Errorf("score[%s] = %v, want 1/3", n, res.Scores[n])
		}
	}
}

func TestPopularModuleRanksHigher(t *testing.T) {
	// Every app imports "stdlib"; one app also imports "niche".
	nodes := []string{"stdlib", "niche", "app1", "app2", "app3"}
	edges := []registry.Edge{
		edge("app1", "stdlib", "import"),
		edge("app2", "stdlib", "import"),
		edge("app3", "stdlib", "import"),
		edge("app1", "niche", "import"),
	}
	res := Compute(nodes, edges, Options{})
	if res.Scores["stdlib"] <= res.Scores["niche"] {
		t.Errorf("stdlib %v <= niche %v", res.Scores["stdlib"], res.Scores["niche"])
	}
	if res.Scores["niche"] <= res.Scores["app1"] {
		t.Errorf("imported module should outrank leaf app")
	}
}

func TestImportOutweighsEmbed(t *testing.T) {
	// Same in-degree, different edge kinds.
	nodes := []string{"viaImport", "viaEmbed", "src1", "src2"}
	edges := []registry.Edge{
		edge("src1", "viaImport", "import"),
		edge("src1", "viaEmbed", "embed"),
		edge("src2", "viaImport", "import"),
		edge("src2", "viaEmbed", "embed"),
	}
	res := Compute(nodes, edges, Options{})
	if res.Scores["viaImport"] <= res.Scores["viaEmbed"] {
		t.Errorf("import %v <= embed %v", res.Scores["viaImport"], res.Scores["viaEmbed"])
	}
}

func TestSelfEdgesIgnored(t *testing.T) {
	nodes := []string{"a", "b"}
	edges := []registry.Edge{
		edge("a", "a", "import"), // self-vote must not inflate a
		edge("b", "a", "import"),
	}
	res := Compute(nodes, edges, Options{})
	resNoSelf := Compute(nodes, []registry.Edge{edge("b", "a", "import")}, Options{})
	if math.Abs(res.Scores["a"]-resNoSelf.Scores["a"]) > 1e-9 {
		t.Error("self-edge changed scores")
	}
}

func TestDanglingNodesHandled(t *testing.T) {
	// "sink" has no outgoing edges; mass must not leak.
	nodes := []string{"a", "sink"}
	edges := []registry.Edge{edge("a", "sink", "import")}
	res := Compute(nodes, edges, Options{})
	var sum float64
	for _, s := range res.Scores {
		sum += s
	}
	if math.Abs(sum-1.0) > 1e-6 {
		t.Errorf("mass leaked: sum = %v", sum)
	}
	if res.Scores["sink"] <= res.Scores["a"] {
		t.Error("sink should accumulate rank")
	}
}

func TestPersonalizationBiases(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	edges := []registry.Edge{} // no edges: rank = teleport vector
	res := Compute(nodes, edges, Options{
		Personalization: map[string]float64{"b": 3, "a": 1},
	})
	if !(res.Scores["b"] > res.Scores["a"] && res.Scores["a"] > res.Scores["c"]) {
		t.Errorf("personalization ignored: %+v", res.Scores)
	}
	if res.Scores["c"] != 0 {
		t.Errorf("non-personalized node got teleport mass: %v", res.Scores["c"])
	}
}

func TestPersonalizationUnknownNodesFallsBack(t *testing.T) {
	nodes := []string{"a", "b"}
	res := Compute(nodes, nil, Options{Personalization: map[string]float64{"ghost": 1}})
	if math.Abs(res.Scores["a"]-0.5) > 1e-6 {
		t.Errorf("fallback to uniform failed: %+v", res.Scores)
	}
}

func TestConvergenceOnRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 50 + r.Intn(100)
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
		}
		var edges []registry.Edge
		for i := 0; i < n*3; i++ {
			kinds := []string{"import", "embed"}
			edges = append(edges, edge(nodes[r.Intn(n)], nodes[r.Intn(n)], kinds[r.Intn(2)]))
		}
		res := Compute(nodes, edges, Options{})
		if !res.Converged {
			t.Fatalf("trial %d: not converged in %d iters", trial, res.Iterations)
		}
		var sum float64
		for _, s := range res.Scores {
			sum += s
		}
		if math.Abs(sum-1.0) > 1e-6 {
			t.Fatalf("trial %d: sum = %v", trial, sum)
		}
		for name, s := range res.Scores {
			if s < 0 {
				t.Fatalf("trial %d: negative score for %s", trial, name)
			}
		}
	}
}

func TestOrderDeterministic(t *testing.T) {
	scores := map[string]float64{"b": 0.5, "a": 0.5, "c": 0.9}
	got := Order(scores)
	if got[0].Module != "c" || got[1].Module != "a" || got[2].Module != "b" {
		t.Errorf("Order = %+v", got)
	}
}

func testRegistry(t *testing.T) *registry.Registry {
	t.Helper()
	reg := registry.New(nil)
	prog, err := wvm.Assemble("push 1\nhalt", nil)
	if err != nil {
		t.Fatal(err)
	}
	put := func(mod, dev, summary string, deps ...string) {
		_, err := reg.Put(registry.Upload{
			Module: mod, Version: "1.0", Developer: dev, Kind: registry.KindApp,
			Program: prog, Summary: summary, Deps: deps,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	put("imglib", "devA", "image processing library")
	put("photocrop", "devA", "photo cropping", "imglib")
	put("photoshare", "devB", "photo sharing", "imglib", "photocrop")
	put("blogger", "devC", "blog engine")
	return reg
}

func TestSearchRanked(t *testing.T) {
	reg := testRegistry(t)
	got := SearchRanked(reg, "photo", Options{})
	if len(got) != 2 {
		t.Fatalf("SearchRanked = %+v", got)
	}
	// photocrop is imported by photoshare, so it outranks it.
	if got[0].Module != "photocrop" {
		t.Errorf("top result = %s, want photocrop", got[0].Module)
	}
	if SearchRanked(reg, "zebra", Options{}) != nil {
		t.Error("no-match query returned results")
	}
}

func TestSearchRankedWithEndorsements(t *testing.T) {
	reg := testRegistry(t)
	// Heavily endorse blogger; with personalization mixed in, its rank
	// must rise above an un-endorsed leaf.
	for _, e := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"} {
		reg.Endorse(e, "blogger")
	}
	all := SearchRanked(reg, "", Options{})
	pos := map[string]int{}
	for i, r := range all {
		pos[r.Module] = i
	}
	if pos["blogger"] >= pos["photoshare"] {
		t.Errorf("endorsed blogger (%d) did not outrank leaf photoshare (%d)",
			pos["blogger"], pos["photoshare"])
	}
}

func TestDeveloperRank(t *testing.T) {
	reg := testRegistry(t)
	devs := DeveloperRank(reg, Options{})
	if len(devs) != 3 {
		t.Fatalf("DeveloperRank = %+v", devs)
	}
	// devA owns imglib (imported by two) and photocrop: most trusted.
	if devs[0].Module != "devA" {
		t.Errorf("top developer = %s, want devA", devs[0].Module)
	}
}
