// The Index puts CodeRank on the request path. The registry publishes
// immutable catalogue snapshots with a change sequence; the Index keeps
// one immutable RankedView per observed sequence behind an atomic
// pointer. Reads are lock-free: a request either reuses the cached view
// (the overwhelmingly common case — catalogue mutations are rare
// relative to searches) or, when the sequence moved, recomputes once
// under a single-flight mutex, warm-started from the previous scores so
// the power iteration converges in a few steps instead of hundreds.
package rank

import (
	"sort"
	"sync"
	"sync/atomic"

	"w5/internal/registry"
)

// RankedView is one immutable CodeRank result tied to a registry
// snapshot. Everything reachable from a published view is read-only.
type RankedView struct {
	// Seq is the registry change sequence this view was computed from.
	Seq uint64
	// Scores maps module name to CodeRank score (summing to 1).
	Scores map[string]float64
	// Ordered lists all modules by descending score (name tiebreak).
	Ordered []Ranked
	// Iterations is how many power-iteration steps the recompute took —
	// small when warm-started after an incremental catalogue change.
	Iterations int
}

// Index serves lock-free CodeRank views that track a registry
// incrementally. Safe for concurrent use; the zero value is not valid,
// use NewIndex.
type Index struct {
	opts Options
	mu   sync.Mutex // single-flight recompute
	view atomic.Pointer[RankedView]
}

// NewIndex returns an Index computing with the given options.
// opts.Personalization is normally left nil: the Index derives the
// teleport vector from editor endorsements (§3.2) at each recompute,
// exactly as SearchRanked does.
func NewIndex(opts Options) *Index {
	return &Index{opts: opts}
}

// View returns the ranked view for the registry's current snapshot,
// recomputing at most once per change sequence. The fast path is two
// atomic loads and a comparison.
func (ix *Index) View(reg *registry.Registry) *RankedView {
	if v := ix.view.Load(); v != nil && v.Seq == reg.Seq() {
		return v
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	rv := reg.View()
	if v := ix.view.Load(); v != nil && v.Seq >= rv.Seq() {
		return v
	}
	nv := ix.compute(rv)
	ix.view.Store(nv)
	return nv
}

// Refresh recomputes unconditionally from the registry's current
// snapshot (still warm-started) and publishes the result. Exists for
// benchmarks and tests that must measure or observe the recompute
// itself.
func (ix *Index) Refresh(reg *registry.Registry) *RankedView {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	nv := ix.compute(reg.View())
	ix.view.Store(nv)
	return nv
}

// compute runs CodeRank against one catalogue snapshot, warm-started
// from the previously published view. Caller holds ix.mu.
func (ix *Index) compute(rv registry.View) *RankedView {
	nodes := rv.Modules()
	opts := ix.opts
	if opts.Personalization == nil {
		opts.Personalization = endorsementVector(rv, nodes)
	}
	if prev := ix.view.Load(); prev != nil {
		opts.Warm = prev.Scores
	}
	res := Compute(nodes, rv.Edges(), opts)
	return &RankedView{
		Seq:        rv.Seq(),
		Scores:     res.Scores,
		Ordered:    Order(res.Scores),
		Iterations: res.Iterations,
	}
}

// endorsementVector builds the §3.2 personalization: a uniform base so
// every module keeps teleport mass, plus one unit per editor
// endorsement. Returns nil (uniform teleport) when nothing is endorsed.
func endorsementVector(rv registry.View, nodes []string) map[string]float64 {
	any := false
	for _, m := range nodes {
		if rv.EndorsementCount(m) > 0 {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	pers := make(map[string]float64, len(nodes))
	for _, m := range nodes {
		pers[m] = 1 + float64(rv.EndorsementCount(m))
	}
	return pers
}

// SearchRanked filters one catalogue snapshot by query and orders the
// matches by the cached CodeRank view — the request-path form of the
// package-level SearchRanked, O(matches·log matches) per call with no
// locks and no power iteration on the hot path.
func (ix *Index) SearchRanked(reg *registry.Registry, query string) []Ranked {
	rv := reg.View()
	v := ix.View(reg)
	matches := rv.Search(query)
	if len(matches) == 0 {
		return nil
	}
	out := make([]Ranked, 0, len(matches))
	for _, m := range matches {
		out = append(out, Ranked{Module: m.Module, Score: v.Scores[m.Module]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Module < out[j].Module
	})
	return out
}
