package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"w5/internal/difc"
)

// These tests pin the request-path scaling contract: the per-app
// capability cache must (a) serve cached lookups without allocating,
// (b) stay exactly equivalent to a from-scratch rescan of the grant
// tables after any sequence of grants and revocations, and (c) never
// serve stale or torn state under concurrent invokes and grant churn.

// recomputeAppCaps is the pre-cache O(users) scan, kept here as the
// executable specification the incremental cache is checked against.
func recomputeAppCaps(p *Provider, app string) (difc.CapSet, difc.Label) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	caps := difc.EmptyCaps
	var endorse []difc.Tag
	for user, apps := range p.enabled {
		if apps[app] {
			if u := p.users[user]; u != nil {
				caps = caps.Grant(difc.Plus(u.SecrecyTag))
			}
		}
	}
	for user, apps := range p.writes {
		if apps[app] {
			if u := p.users[user]; u != nil {
				caps = caps.Grant(difc.Plus(u.WriteTag))
				endorse = append(endorse, u.WriteTag)
			}
		}
	}
	return caps, difc.NewLabel(endorse...)
}

func capsEqual(t *testing.T, p *Provider, app string) {
	t.Helper()
	gotCaps, gotEndorse := p.appCaps(app)
	wantCaps, wantEndorse := recomputeAppCaps(p, app)
	if !gotCaps.Equal(wantCaps) {
		t.Fatalf("appCaps(%s) caps = %s, want %s", app, gotCaps, wantCaps)
	}
	if !gotEndorse.Equal(wantEndorse) {
		t.Fatalf("appCaps(%s) endorse = %s, want %s", app, gotEndorse, wantEndorse)
	}
}

func TestAppCapsCacheMatchesRescan(t *testing.T) {
	p := NewProvider(Config{Name: "cache", Enforce: true})
	const app = "photo"
	users := make([]string, 6)
	for i := range users {
		users[i] = fmt.Sprintf("u%d", i)
		if _, err := p.CreateUser(users[i], "pw"); err != nil {
			t.Fatal(err)
		}
	}
	capsEqual(t, p, app) // empty: no grants yet

	for _, u := range users {
		if err := p.EnableApp(u, app); err != nil {
			t.Fatal(err)
		}
	}
	capsEqual(t, p, app)

	p.GrantWrite(users[0], app)
	p.GrantWrite(users[1], app)
	capsEqual(t, p, app)

	p.DisableApp(users[2], app)
	p.RevokeWrite(users[1], app)
	capsEqual(t, p, app)

	// Re-enable after disable, revoke-without-grant, unknown users.
	if err := p.EnableApp(users[2], app); err != nil {
		t.Fatal(err)
	}
	p.RevokeWrite(users[3], app)
	p.DisableApp("ghost", app)
	if err := p.EnableApp("ghost", app); !errors.Is(err, ErrNoUser) {
		t.Fatalf("enable for unknown user: %v", err)
	}
	capsEqual(t, p, app)

	// A second app's grants must not bleed into the first.
	p.EnableApp(users[4], "otherapp")
	p.GrantWrite(users[4], "otherapp")
	capsEqual(t, p, app)
	capsEqual(t, p, "otherapp")
}

func TestAppCapsCachedLookupDoesNotAllocate(t *testing.T) {
	p := NewProvider(Config{Name: "alloc", Enforce: true})
	const app = "photo"
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("u%d", i)
		if _, err := p.CreateUser(name, "pw"); err != nil {
			t.Fatal(err)
		}
		p.EnableApp(name, app)
	}
	p.GrantWrite("u0", app)
	p.appCaps(app) // pay the one-time rebuild

	var caps difc.CapSet
	var endorse difc.Label
	if avg := testing.AllocsPerRun(200, func() { caps, endorse = p.appCaps(app) }); avg != 0 {
		t.Errorf("cached appCaps allocates %.1f times per op, want 0", avg)
	}
	u0, _ := p.GetUser("u0")
	if !caps.HasPlus(u0.SecrecyTag) || !endorse.Has(u0.WriteTag) {
		t.Error("cached appCaps returned wrong grants")
	}

	if avg := testing.AllocsPerRun(200, func() { _ = p.UserCred("u0") }); avg != 0 {
		t.Errorf("UserCred allocates %.1f times per op, want 0", avg)
	}
}

// TestExportCheckConsumesInvocation pins that a second ExportCheck on
// the same invocation is refused outright: the first call exited the
// (recycled) request process, so touching it again could read another
// request's state.
func TestExportCheckConsumesInvocation(t *testing.T) {
	p := NewProvider(Config{Name: "consume", Enforce: true})
	setupBobWithDiary(t, p)
	p.InstallApp(echoApp{})
	p.EnableApp("bob", "echo")
	inv, err := p.Invoke("echo", AppRequest{Viewer: "bob", Owner: "bob",
		Params: map[string]string{"path": "/private/diary"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ExportCheck(inv, "bob"); err != nil {
		t.Fatalf("first export: %v", err)
	}
	if _, err := p.ExportCheck(inv, "bob"); !errors.Is(err, ErrExportDenied) {
		t.Fatalf("second export = %v, want ErrExportDenied", err)
	}
}

// TestConcurrentInvokeAndGrantMutation drives parallel Invoke against
// concurrent EnableApp/DisableApp/GrantWrite/RevokeWrite churn. Run
// under -race this pins the cache-invalidation locking; the end-state
// check pins that no update was lost. A stable user's requests must
// succeed throughout regardless of the churn on the victim's grants.
func TestConcurrentInvokeAndGrantMutation(t *testing.T) {
	p := NewProvider(Config{Name: "churn", Enforce: true, DisableQuotas: true})
	p.InstallApp(echoApp{})

	for _, n := range []string{"stable", "victim"} {
		if _, err := p.CreateUser(n, "pw"); err != nil {
			t.Fatal(err)
		}
		u, _ := p.GetUser(n)
		label := difc.LabelPair{
			Secrecy:   difc.NewLabel(u.SecrecyTag),
			Integrity: difc.NewLabel(u.WriteTag),
		}
		if err := p.FS.Write(p.UserCred(n), "/home/"+n+"/private/diary",
			[]byte("secret of "+n), label); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.EnableApp("stable", "echo"); err != nil {
		t.Fatal(err)
	}

	const iters = 300
	var wg sync.WaitGroup
	errCh := make(chan error, 4*iters)

	// Invokers: the stable user's own request must always work.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				inv, err := p.Invoke("echo", AppRequest{
					Viewer: "stable", Owner: "stable",
					Params: map[string]string{"path": "/private/diary"},
				})
				if err != nil {
					errCh <- err
					continue
				}
				body, err := p.ExportCheck(inv, "stable")
				if err != nil {
					errCh <- fmt.Errorf("stable export: %w", err)
					continue
				}
				if string(body) != "secret of stable" {
					errCh <- fmt.Errorf("stable got %q", body)
				}
			}
		}()
	}
	// Churner: flips the victim's grants as fast as it can.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := p.EnableApp("victim", "echo"); err != nil {
				errCh <- err
			}
			p.GrantWrite("victim", "echo")
			p.RevokeWrite("victim", "echo")
			p.DisableApp("victim", "echo")
		}
		// Leave the victim enabled so the end state is deterministic.
		if err := p.EnableApp("victim", "echo"); err != nil {
			errCh <- err
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	capsEqual(t, p, "echo")
}
