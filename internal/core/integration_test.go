package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"w5/internal/audit"
	"w5/internal/declass"
	"w5/internal/difc"
	"w5/internal/quota"
)

// TestConcurrentMultiUserIsolation runs many users and many concurrent
// app invocations and asserts the core isolation property under racy
// conditions: every user sees exactly their own document, and no
// cross-user export ever succeeds without a policy.
func TestConcurrentMultiUserIsolation(t *testing.T) {
	const users, itersPerUser = 8, 40
	p := NewProvider(Config{Name: "integ", Enforce: true})
	p.InstallApp(echoApp{})

	names := make([]string, users)
	for i := range names {
		names[i] = fmt.Sprintf("user%02d", i)
		if _, err := p.CreateUser(names[i], "pw"); err != nil {
			t.Fatal(err)
		}
		u, _ := p.GetUser(names[i])
		label := difc.LabelPair{
			Secrecy:   difc.NewLabel(u.SecrecyTag),
			Integrity: difc.NewLabel(u.WriteTag),
		}
		doc := []byte("secret of " + names[i])
		if err := p.FS.Write(p.UserCred(names[i]),
			"/home/"+names[i]+"/private/doc", doc, label); err != nil {
			t.Fatal(err)
		}
		p.EnableApp(names[i], "echo")
	}

	var wg sync.WaitGroup
	errCh := make(chan error, users*itersPerUser*2)
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			victim := names[(me+1)%users]
			for it := 0; it < itersPerUser; it++ {
				// My own document: must always work and be mine.
				inv, err := p.Invoke("echo", AppRequest{
					Viewer: names[me], Owner: names[me],
					Params: map[string]string{"path": "/private/doc"},
				})
				if err != nil {
					errCh <- err
					continue
				}
				body, err := p.ExportCheck(inv, names[me])
				if err != nil {
					errCh <- fmt.Errorf("%s own read: %w", names[me], err)
					continue
				}
				if string(body) != "secret of "+names[me] {
					errCh <- fmt.Errorf("%s got %q", names[me], body)
				}
				// My neighbour's document: app reads it, export must fail.
				inv, err = p.Invoke("echo", AppRequest{
					Viewer: names[me], Owner: victim,
					Params: map[string]string{"path": "/private/doc"},
				})
				if err != nil {
					errCh <- err
					continue
				}
				if _, err := p.ExportCheck(inv, names[me]); !errors.Is(err, ErrExportDenied) {
					errCh <- fmt.Errorf("%s exported %s's data (err=%v)", names[me], victim, err)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Every cross-user attempt was audited as a denial.
	denials := p.Log.CountKind(audit.KindExportDenied)
	if denials < users*itersPerUser {
		t.Errorf("only %d export denials audited, want >= %d", denials, users*itersPerUser)
	}
}

// TestDeclassifierChangeTakesEffectImmediately covers a policy
// lifecycle race users care about: revoking a declassifier stops
// sharing on the very next request, with no caching anywhere.
func TestDeclassifierChangeTakesEffectImmediately(t *testing.T) {
	p := NewProvider(Config{Name: "integ2", Enforce: true})
	setupBobWithDiary(t, p)
	p.CreateUser("alice", "pw")
	p.InstallApp(echoApp{})
	p.EnableApp("bob", "echo")

	serve := func() error {
		inv, err := p.Invoke("echo", AppRequest{Viewer: "alice", Owner: "bob",
			Params: map[string]string{"path": "/private/diary"}})
		if err != nil {
			return err
		}
		_, err = p.ExportCheck(inv, "alice")
		return err
	}
	if err := serve(); !errors.Is(err, ErrExportDenied) {
		t.Fatalf("before grant: %v", err)
	}
	p.AuthorizeDeclassifier("bob", declass.Group{GroupName: "g", Members: []string{"alice"}})
	if err := serve(); err != nil {
		t.Fatalf("after grant: %v", err)
	}
	p.Declass.Revoke("bob", "group:g")
	if err := serve(); !errors.Is(err, ErrExportDenied) {
		t.Fatalf("after revoke: %v", err)
	}
}

// TestQuotaExhaustionIsPerPrincipal ensures one app hitting its network
// budget cannot affect another app's service — the billing boundary.
func TestQuotaExhaustionIsPerPrincipal(t *testing.T) {
	p := NewProvider(Config{Name: "integ3", Enforce: true,
		AppLimits: quota.Limits{Network: 2048}})
	setupBobWithDiary(t, p)
	p.InstallApp(echoApp{})
	p.InstallApp(appFunc{"echo2", func(env *AppEnv, req AppRequest) (AppResponse, error) {
		data, err := env.ReadFile("/home/" + req.Owner + req.Params["path"])
		if err != nil {
			return AppResponse{Status: 404}, nil
		}
		return AppResponse{Body: data}, nil
	}})
	p.EnableApp("bob", "echo")
	p.EnableApp("bob", "echo2")

	serve := func(app string) error {
		inv, err := p.Invoke(app, AppRequest{Viewer: "bob", Owner: "bob",
			Params: map[string]string{"path": "/private/diary"}})
		if err != nil {
			return err
		}
		_, err = p.ExportCheck(inv, "bob")
		return err
	}
	// Drain app "echo"'s 2 KiB budget ("my secret" = 9 bytes per req).
	exhausted := false
	for i := 0; i < 400; i++ {
		if err := serve("echo"); err != nil {
			exhausted = true
			break
		}
	}
	if !exhausted {
		t.Fatal("echo never hit its network quota")
	}
	// The other app is unaffected.
	if err := serve("echo2"); err != nil {
		t.Fatalf("echo2 affected by echo's exhaustion: %v", err)
	}
}

// TestAuditTrailTellsTheStory replays the quickstart flow and checks
// the audit log contains the load-bearing events in order categories.
func TestAuditTrailTellsTheStory(t *testing.T) {
	p := NewProvider(Config{Name: "integ4", Enforce: true})
	setupBobWithDiary(t, p)
	p.CreateUser("eve", "pw")
	p.InstallApp(echoApp{})
	p.EnableApp("bob", "echo")
	p.AuthorizeDeclassifier("bob", declass.OwnerOnly{})

	inv, _ := p.Invoke("echo", AppRequest{Viewer: "bob", Owner: "bob",
		Params: map[string]string{"path": "/private/diary"}})
	p.ExportCheck(inv, "bob")
	inv, _ = p.Invoke("echo", AppRequest{Viewer: "eve", Owner: "bob",
		Params: map[string]string{"path": "/private/diary"}})
	p.ExportCheck(inv, "eve")

	for kind, min := range map[audit.Kind]int{
		audit.KindTagMint:      4, // 2 users x 2 tags
		audit.KindGrant:        1, // enable
		audit.KindPolicyChange: 1, // declassifier authorization
		audit.KindSpawn:        2,
		audit.KindExport:       1, // bob's success
		audit.KindExportDenied: 1, // eve's denial
	} {
		if got := p.Log.CountKind(kind); got < min {
			t.Errorf("audit %s count = %d, want >= %d", kind, got, min)
		}
	}
}

// TestLabelsNeverShrinkDuringHandle pins the auto-taint contract: after
// an app reads two users' data, its process label contains both tags.
func TestLabelsNeverShrinkDuringHandle(t *testing.T) {
	p := NewProvider(Config{Name: "integ5", Enforce: true})
	for _, n := range []string{"u1", "u2"} {
		p.CreateUser(n, "pw")
		u, _ := p.GetUser(n)
		label := difc.LabelPair{
			Secrecy:   difc.NewLabel(u.SecrecyTag),
			Integrity: difc.NewLabel(u.WriteTag),
		}
		p.FS.Write(p.UserCred(n), "/home/"+n+"/private/doc", []byte(n), label)
	}
	mixer := appFunc{"mixer", func(env *AppEnv, req AppRequest) (AppResponse, error) {
		a, err1 := env.ReadFile("/home/u1/private/doc")
		b, err2 := env.ReadFile("/home/u2/private/doc")
		if err1 != nil || err2 != nil {
			return AppResponse{Status: 404}, nil
		}
		return AppResponse{Body: append(a, b...)}, nil
	}}
	p.InstallApp(mixer)
	p.EnableApp("u1", "mixer")
	p.EnableApp("u2", "mixer")

	inv, err := p.Invoke("mixer", AppRequest{Viewer: "u1", Owner: "u1"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Kernel.Exit(inv.Proc)
	u1, _ := p.GetUser("u1")
	u2, _ := p.GetUser("u2")
	s := inv.Proc.Labels().Secrecy
	if !s.Has(u1.SecrecyTag) || !s.Has(u2.SecrecyTag) {
		t.Fatalf("commingling process label %s missing a tag", s)
	}
	// Exportable to NOBODY without both owners' policies: not even u1.
	if _, err := p.ExportCheck(inv, "u1"); !errors.Is(err, ErrExportDenied) {
		t.Errorf("commingled export to u1: %v", err)
	}
}
