package core

import (
	"errors"
	"strings"
	"testing"

	"w5/internal/declass"
	"w5/internal/difc"
	"w5/internal/registry"
	"w5/internal/store"
	"w5/internal/wvm"
)

func newProvider(t *testing.T) *Provider {
	t.Helper()
	return NewProvider(Config{Name: "test", Enforce: true})
}

func TestCreateUserProvisionsHome(t *testing.T) {
	p := newProvider(t)
	u, err := p.CreateUser("bob", "hunter2")
	if err != nil {
		t.Fatal(err)
	}
	if u.SecrecyTag == 0 || u.WriteTag == 0 || u.SecrecyTag == u.WriteTag {
		t.Fatalf("bad tags: %+v", u)
	}
	// Home skeleton exists and carries the right labels.
	cred := p.UserCred("bob")
	for _, dir := range []string{"/home/bob", "/home/bob/private", "/home/bob/public", "/home/bob/social"} {
		if _, err := p.FS.List(cred, dir); err != nil {
			t.Errorf("List(%s): %v", dir, err)
		}
	}
	st, _ := p.FS.Stat(cred, "/home/bob/private")
	if !st.Label.Secrecy.Has(u.SecrecyTag) {
		t.Error("/home/bob/private not secret")
	}
	if !st.Label.Integrity.Has(u.WriteTag) {
		t.Error("/home/bob/private not write-protected")
	}
	// Tag reverse lookup.
	if owner, ok := p.TagOwner(u.SecrecyTag); !ok || owner != "bob" {
		t.Error("TagOwner(s_bob) wrong")
	}
	// Duplicate refused.
	if _, err := p.CreateUser("bob", "x"); !errors.Is(err, ErrUserExists) {
		t.Errorf("duplicate user: %v", err)
	}
}

func TestAuthenticate(t *testing.T) {
	p := newProvider(t)
	p.CreateUser("bob", "hunter2")
	if !p.Authenticate("bob", "hunter2") {
		t.Error("correct password rejected")
	}
	if p.Authenticate("bob", "wrong") {
		t.Error("wrong password accepted")
	}
	if p.Authenticate("ghost", "x") {
		t.Error("missing user accepted")
	}
}

// echoApp is a minimal test app: it reads the file named by the "path"
// parameter (relative to the owner's home) and returns its contents.
type echoApp struct{}

func (echoApp) Name() string { return "echo" }
func (echoApp) Handle(env *AppEnv, req AppRequest) (AppResponse, error) {
	data, err := env.ReadFile("/home/" + req.Owner + req.Params["path"])
	if err != nil {
		return AppResponse{Status: 404, Body: []byte("not found")}, nil
	}
	return AppResponse{Body: data}, nil
}

// leakApp tries to copy the owner's private data into a public file —
// the storage-relay exfiltration.
type leakApp struct{}

func (leakApp) Name() string { return "leaker" }
func (leakApp) Handle(env *AppEnv, req AppRequest) (AppResponse, error) {
	data, err := env.ReadFile("/home/" + req.Owner + "/private/diary")
	if err != nil {
		return AppResponse{Status: 404}, nil
	}
	// Attempt the relay; the platform must refuse.
	err = env.WriteFile("/home/"+req.Owner+"/public/stolen", data, difc.LabelPair{})
	if err != nil {
		return AppResponse{Body: []byte("relay blocked")}, nil
	}
	return AppResponse{Body: []byte("relay SUCCEEDED")}, nil
}

func setupBobWithDiary(t *testing.T, p *Provider) {
	t.Helper()
	if _, err := p.CreateUser("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	cred := p.UserCred("bob")
	u, _ := p.GetUser("bob")
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
	if err := p.FS.Write(cred, "/home/bob/private/diary", []byte("my secret"), label); err != nil {
		t.Fatal(err)
	}
}

func TestInvokeRequiresEnablement(t *testing.T) {
	p := newProvider(t)
	setupBobWithDiary(t, p)
	p.InstallApp(echoApp{})

	// Without EnableApp the app lacks s_bob+ and cannot read.
	inv, err := p.Invoke("echo", AppRequest{Viewer: "bob", Params: map[string]string{"path": "/private/diary"}})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Response.Status != 404 {
		t.Errorf("un-enabled app read private data: %+v", inv.Response)
	}
	p.Kernel.Exit(inv.Proc)

	// After the one-checkbox enable, the read works.
	p.EnableApp("bob", "echo")
	inv, err = p.Invoke("echo", AppRequest{Viewer: "bob", Params: map[string]string{"path": "/private/diary"}})
	if err != nil {
		t.Fatal(err)
	}
	if string(inv.Response.Body) != "my secret" {
		t.Errorf("body = %q", inv.Response.Body)
	}
	// The process is now tainted with s_bob.
	u, _ := p.GetUser("bob")
	if !inv.Proc.Labels().Secrecy.Has(u.SecrecyTag) {
		t.Error("app process not tainted after read")
	}
	p.Kernel.Exit(inv.Proc)
}

func TestExportToOwnerAllowed(t *testing.T) {
	p := newProvider(t)
	setupBobWithDiary(t, p)
	p.InstallApp(echoApp{})
	p.EnableApp("bob", "echo")

	inv, _ := p.Invoke("echo", AppRequest{Viewer: "bob", Params: map[string]string{"path": "/private/diary"}})
	body, err := p.ExportCheck(inv, "bob")
	if err != nil {
		t.Fatalf("export to owner: %v", err)
	}
	if string(body) != "my secret" {
		t.Errorf("body = %q", body)
	}
}

func TestExportToStrangerDenied(t *testing.T) {
	p := newProvider(t)
	setupBobWithDiary(t, p)
	p.CreateUser("charlie", "pw")
	p.InstallApp(echoApp{})
	p.EnableApp("bob", "echo")

	inv, _ := p.Invoke("echo", AppRequest{
		Viewer: "charlie", Owner: "bob",
		Params: map[string]string{"path": "/private/diary"},
	})
	if _, err := p.ExportCheck(inv, "charlie"); !errors.Is(err, ErrExportDenied) {
		t.Fatalf("export to charlie: %v", err)
	}
}

func TestExportToAnonymousDenied(t *testing.T) {
	p := newProvider(t)
	setupBobWithDiary(t, p)
	p.InstallApp(echoApp{})
	p.EnableApp("bob", "echo")

	inv, _ := p.Invoke("echo", AppRequest{
		Viewer: "", Owner: "bob",
		Params: map[string]string{"path": "/private/diary"},
	})
	if _, err := p.ExportCheck(inv, ""); !errors.Is(err, ErrExportDenied) {
		t.Fatalf("anonymous export: %v", err)
	}
}

func TestExportViaFriendDeclassifier(t *testing.T) {
	// The full §3.1 scenario: Bob authorizes a friend-list
	// declassifier; Alice (friend) can see his data, Charlie cannot.
	p := newProvider(t)
	setupBobWithDiary(t, p)
	p.CreateUser("alice", "pw")
	p.CreateUser("charlie", "pw")
	p.InstallApp(echoApp{})
	p.EnableApp("bob", "echo")

	// Bob's friend list (stored like any other private data).
	bobCred := p.UserCred("bob")
	u, _ := p.GetUser("bob")
	label := difc.LabelPair{Secrecy: difc.NewLabel(u.SecrecyTag), Integrity: difc.NewLabel(u.WriteTag)}
	if err := p.FS.Write(bobCred, "/home/bob/social/friends", []byte("alice\n"), label); err != nil {
		t.Fatal(err)
	}
	if err := p.AuthorizeDeclassifier("bob", declass.FriendList{}); err != nil {
		t.Fatal(err)
	}

	serve := func(viewer string) ([]byte, error) {
		inv, err := p.Invoke("echo", AppRequest{
			Viewer: viewer, Owner: "bob",
			Params: map[string]string{"path": "/private/diary"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return p.ExportCheck(inv, viewer)
	}

	if body, err := serve("alice"); err != nil || string(body) != "my secret" {
		t.Errorf("friend export: %q, %v", body, err)
	}
	if _, err := serve("charlie"); !errors.Is(err, ErrExportDenied) {
		t.Errorf("non-friend export: %v", err)
	}
	if body, err := serve("bob"); err != nil || string(body) != "my secret" {
		t.Errorf("owner export: %q, %v", body, err)
	}
}

func TestStorageRelayBlocked(t *testing.T) {
	p := newProvider(t)
	setupBobWithDiary(t, p)
	p.InstallApp(leakApp{})
	p.EnableApp("bob", "leaker")

	inv, err := p.Invoke("leaker", AppRequest{Viewer: "bob", Owner: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if string(inv.Response.Body) != "relay blocked" {
		t.Fatalf("storage relay: %q", inv.Response.Body)
	}
	p.Kernel.Exit(inv.Proc)
	// And nothing landed in /public.
	infos, _ := p.FS.List(p.UserCred("bob"), "/home/bob/public")
	if len(infos) != 0 {
		t.Errorf("public dir contains %v", infos)
	}
}

func TestWriteGrantRequiredToModify(t *testing.T) {
	p := newProvider(t)
	setupBobWithDiary(t, p)
	writer := appFunc{"writer", func(env *AppEnv, req AppRequest) (AppResponse, error) {
		label, err := env.UserLabel(req.Owner)
		if err != nil {
			return AppResponse{}, err
		}
		// Must first raise to read level? No: blind write at the
		// owner's label; integrity is the gate.
		if err := env.WriteFile("/home/"+req.Owner+"/private/diary", []byte("edited"), label); err != nil {
			return AppResponse{Body: []byte("write denied")}, nil
		}
		return AppResponse{Body: []byte("write ok")}, nil
	}}
	p.InstallApp(writer)
	p.EnableApp("bob", "writer")

	inv, _ := p.Invoke("writer", AppRequest{Viewer: "bob", Owner: "bob"})
	if string(inv.Response.Body) != "write denied" {
		t.Fatalf("write without grant: %q", inv.Response.Body)
	}
	p.Kernel.Exit(inv.Proc)

	p.GrantWrite("bob", "writer")
	inv, _ = p.Invoke("writer", AppRequest{Viewer: "bob", Owner: "bob"})
	if string(inv.Response.Body) != "write ok" {
		t.Fatalf("write with grant: %q", inv.Response.Body)
	}
	p.Kernel.Exit(inv.Proc)

	data, _, _ := p.FS.Read(p.UserCred("bob"), "/home/bob/private/diary")
	if string(data) != "edited" {
		t.Error("granted write did not take effect")
	}
}

// appFunc adapts a function to the App interface for tests.
type appFunc struct {
	name string
	fn   func(*AppEnv, AppRequest) (AppResponse, error)
}

func (a appFunc) Name() string { return a.name }
func (a appFunc) Handle(env *AppEnv, req AppRequest) (AppResponse, error) {
	return a.fn(env, req)
}

func TestInvokeUnknownApp(t *testing.T) {
	p := newProvider(t)
	if _, err := p.Invoke("ghost", AppRequest{}); !errors.Is(err, ErrNoApp) {
		t.Errorf("unknown app: %v", err)
	}
}

func TestDisableAppRevokesRead(t *testing.T) {
	p := newProvider(t)
	setupBobWithDiary(t, p)
	p.InstallApp(echoApp{})
	p.EnableApp("bob", "echo")
	p.DisableApp("bob", "echo")
	inv, _ := p.Invoke("echo", AppRequest{Viewer: "bob", Params: map[string]string{"path": "/private/diary"}})
	if inv.Response.Status != 404 {
		t.Errorf("disabled app still reads: %+v", inv.Response)
	}
	p.Kernel.Exit(inv.Proc)
	if p.AppEnabled("bob", "echo") {
		t.Error("AppEnabled after disable")
	}
}

func TestChameleonTransformsOnExport(t *testing.T) {
	p := newProvider(t)
	setupBobWithDiary(t, p)
	p.CreateUser("date", "pw")
	p.InstallApp(echoApp{})
	p.EnableApp("bob", "echo")

	bobCred := p.UserCred("bob")
	u, _ := p.GetUser("bob")
	label := difc.LabelPair{Secrecy: difc.NewLabel(u.SecrecyTag), Integrity: difc.NewLabel(u.WriteTag)}
	profile := "name: bob\n[private]\nsci-fi fan\n[/private]\nlikes dogs"
	p.FS.Write(bobCred, "/home/bob/social/profile", []byte(profile), label)
	p.AuthorizeDeclassifier("bob", declass.Chameleon{Inner: declass.Public{}})

	inv, _ := p.Invoke("echo", AppRequest{
		Viewer: "date", Owner: "bob",
		Params: map[string]string{"path": "/social/profile"},
	})
	body, err := p.ExportCheck(inv, "date")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "sci-fi") {
		t.Errorf("private marker leaked to date: %q", body)
	}
	if !strings.Contains(string(body), "likes dogs") {
		t.Errorf("public portion lost: %q", body)
	}
}

const wvmEchoAppSource = `
.data pfx "/home/"
.data greet "hello "
; emit "hello <viewer>"
        push @greet
        push #greet
        sys emit
        pop
        push 1024
        sys copy_viewer
        store 0
        push 1024
        load 0
        sys emit
        pop
        halt
`

func TestWVMAppEndToEnd(t *testing.T) {
	p := newProvider(t)
	p.CreateUser("bob", "pw")
	prog, err := wvm.Assemble(wvmEchoAppSource, AppSyscallNames)
	if err != nil {
		t.Fatal(err)
	}
	// Upload to the registry as open source, then install from it.
	_, err = p.Registry.Put(registry.Upload{
		Module: "greeter", Version: "1.0", Developer: "devA",
		Kind: registry.KindApp, Program: prog, Source: wvmEchoAppSource,
		SysNames: AppSyscallNames, Summary: "greets the viewer",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InstallWVMApp("greeter", ""); err != nil {
		t.Fatal(err)
	}
	inv, err := p.Invoke("greeter", AppRequest{Viewer: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	body, err := p.ExportCheck(inv, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "hello bob" {
		t.Errorf("body = %q", body)
	}
}

func TestUsersSortedAndAppNames(t *testing.T) {
	p := newProvider(t)
	p.CreateUser("zoe", "pw")
	p.CreateUser("adam", "pw")
	got := p.Users()
	if len(got) != 2 || got[0] != "adam" {
		t.Errorf("Users = %v", got)
	}
	p.InstallApp(echoApp{})
	if names := p.AppNames(); len(names) != 1 || names[0] != "echo" {
		t.Errorf("AppNames = %v", names)
	}
}

func TestUserCredUnknownUserIsPowerless(t *testing.T) {
	p := newProvider(t)
	cred := p.UserCred("ghost")
	if !cred.Caps.IsEmpty() {
		t.Error("unknown user got capabilities")
	}
	if _, err := p.FS.List(cred, "/"); err != nil && !errors.Is(err, store.ErrDenied) {
		// Root is public: listing should work even powerless.
		t.Errorf("List(/): %v", err)
	}
}
