package core

import (
	"fmt"
	"sync/atomic"

	"w5/internal/audit"
	"w5/internal/declass"
	"w5/internal/difc"
	"w5/internal/kernel"
	"w5/internal/store"
	"w5/internal/table"
)

// App is a developer-contributed application. Implementations live in
// internal/apps and are untrusted: they see only the AppEnv, whose
// every operation is mediated by the DIFC kernel.
type App interface {
	// Name is the application's registry name.
	Name() string
	// Handle serves one request. Returning an error produces a 500
	// without exporting anything.
	Handle(env *AppEnv, req AppRequest) (AppResponse, error)
}

// AppRequest is one invocation of an application.
type AppRequest struct {
	// Viewer is the authenticated requesting user ("" = anonymous).
	Viewer string
	// Owner is the user whose data the request concerns; defaults to
	// Viewer when empty.
	Owner string
	// Path is the app-relative resource path.
	Path string
	// Method is "GET" or "POST".
	Method string
	// Params carries form/query parameters.
	Params map[string]string
}

// AppResponse is what an application produces. The body does NOT leave
// the platform here: the gateway must pass the invocation through
// Provider.ExportCheck first.
type AppResponse struct {
	Status      int
	ContentType string
	Body        []byte
}

// Invocation bundles a finished app run: the response plus the process
// that produced it, whose labels gate the export.
type Invocation struct {
	Response AppResponse
	Proc     *kernel.Process
	provider *Provider
	procName string      // captured at Invoke: Proc may be recycled after release
	released atomic.Bool // set by ExportCheck: the process has been exited
}

// AppEnv is the only interface applications have to the platform. Every
// read raises the process's secrecy label to dominate what was read
// (auto-taint); every write happens at the process's current labels.
// An application literally cannot read private data and then write it
// somewhere less protected.
type AppEnv struct {
	p       *Provider
	proc    *kernel.Process
	appName string
}

// AppName returns the running application's name.
func (e *AppEnv) AppName() string { return e.appName }

// cred snapshots the process's current security context for storage.
func (e *AppEnv) cred() store.Cred {
	return store.Cred{
		Labels:    e.proc.Labels(),
		Caps:      e.proc.Caps(),
		Principal: "app:" + e.appName,
	}
}

func (e *AppEnv) tableCred() table.Cred {
	c := e.cred()
	return table.Cred{Labels: c.Labels, Caps: c.Caps, Principal: c.Principal}
}

// raiseFor raises the process's secrecy label to absorb a label just
// read. The kernel verifies the raise is covered by the process's plus
// capabilities — which is exactly the read-permission check.
func (e *AppEnv) raiseFor(read difc.LabelPair) error {
	cur := e.proc.Labels()
	want := difc.LabelPair{
		Secrecy:   cur.Secrecy.Union(read.Secrecy),
		Integrity: cur.Integrity,
	}
	if want.Secrecy.Equal(cur.Secrecy) {
		return nil
	}
	return e.p.Kernel.SetLabels(e.proc, want)
}

// ReadFile reads a file, tainting the process with the file's secrecy.
//
// The store's Read returns its internal immutable payload slice
// (zero-copy); that is safe for trusted callers, but AppEnv is the
// boundary to UNTRUSTED application code, and handing an app an alias
// of the stored bytes would let a read-only app mutate write-protected
// data in place. The copy here is what keeps the store's
// write-protection a property of the system rather than a convention.
func (e *AppEnv) ReadFile(path string) ([]byte, error) {
	data, label, err := e.p.FS.Read(e.cred(), path)
	if err != nil {
		return nil, err
	}
	if err := e.raiseFor(label); err != nil {
		return nil, kernel.ErrDenied
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// WriteFile writes a file at the given label; the kernel-side checks
// forbid writing below the process's current taint.
func (e *AppEnv) WriteFile(path string, data []byte, label difc.LabelPair) error {
	return e.p.FS.Write(e.cred(), path, data, label)
}

// Mkdir creates a directory at the given label.
func (e *AppEnv) Mkdir(path string, label difc.LabelPair) error {
	return e.p.FS.Mkdir(e.cred(), path, label)
}

// List lists a directory.
func (e *AppEnv) List(path string) ([]store.Info, error) {
	return e.p.FS.List(e.cred(), path)
}

// Stat stats a path.
func (e *AppEnv) Stat(path string) (store.Info, error) {
	return e.p.FS.Stat(e.cred(), path)
}

// Remove deletes a file (write-protection permitting).
func (e *AppEnv) Remove(path string) error {
	return e.p.FS.Remove(e.cred(), path)
}

// UserLabel returns the boilerplate label for a user's private,
// write-protected data: {s_u} / {w_u}. Apps use it when storing data on
// a user's behalf.
func (e *AppEnv) UserLabel(user string) (difc.LabelPair, error) {
	u, err := e.p.GetUser(user)
	if err != nil {
		return difc.LabelPair{}, err
	}
	return u.labels, nil
}

// PublicLabel returns the label of published, write-protected data:
// {} / {w_u}.
func (e *AppEnv) PublicLabel(user string) (difc.LabelPair, error) {
	u, err := e.p.GetUser(user)
	if err != nil {
		return difc.LabelPair{}, err
	}
	return difc.LabelPair{Integrity: u.labels.Integrity}, nil
}

// Insert adds a labeled row.
func (e *AppEnv) Insert(tbl string, values map[string]string, label difc.LabelPair) (uint64, error) {
	return e.p.Tables.Insert(e.tableCred(), tbl, values, label)
}

// Select queries rows visible at the process's clearance, tainting the
// process with the join of the returned rows' labels.
func (e *AppEnv) Select(tbl string, pred table.Pred) ([]table.Row, error) {
	rows, joined, err := e.p.Tables.Select(e.tableCred(), tbl, pred)
	if err != nil {
		return nil, err
	}
	if err := e.raiseFor(joined); err != nil {
		return nil, kernel.ErrDenied
	}
	return rows, nil
}

// Update rewrites matching visible rows.
func (e *AppEnv) Update(tbl string, pred table.Pred, set map[string]string) (int, error) {
	return e.p.Tables.Update(e.tableCred(), tbl, pred, set)
}

// CreateTable declares a table (idempotent convenience for app setup).
func (e *AppEnv) CreateTable(schema table.Schema) error {
	err := e.p.Tables.Create(schema)
	if err == table.ErrTableExist {
		return nil
	}
	return err
}

// Users lists platform accounts. Account existence is public directory
// metadata (like /home names).
func (e *AppEnv) Users() []string { return e.p.Users() }

// Labels exposes the process's current labels (apps may adapt output to
// their taint — e.g. warn the user).
func (e *AppEnv) Labels() difc.LabelPair { return e.proc.Labels() }

// Invoke runs application app for req, in a fresh kernel process
// carrying exactly the capabilities users have granted this app. The
// caller (gateway or test) must route the result through ExportCheck
// before any byte leaves the platform.
func (p *Provider) Invoke(appName string, req AppRequest) (*Invocation, error) {
	ia, ok := p.lookupApp(appName)
	if !ok {
		return nil, ErrNoApp
	}
	if req.Owner == "" {
		req.Owner = req.Viewer
	}
	if req.Params == nil {
		req.Params = map[string]string{}
	}
	if req.Method == "" {
		req.Method = "GET"
	}
	caps, endorse := p.appCaps(appName)
	proc, err := p.Kernel.Spawn(nil, kernel.SpawnSpec{
		Name:      ia.procName,
		Owner:     ia.procName,
		Integrity: endorse,
		Caps:      caps,
		Ephemeral: true, // request-scoped: exited exactly once via ExportCheck or the error path
	})
	if err != nil {
		return nil, err
	}
	env := &AppEnv{p: p, proc: proc, appName: appName}
	resp, err := ia.app.Handle(env, req)
	if err != nil {
		p.Kernel.Exit(proc)
		return nil, fmt.Errorf("w5: app %s: %w", appName, err)
	}
	if resp.Status == 0 {
		resp.Status = 200
	}
	if resp.ContentType == "" {
		resp.ContentType = "text/html; charset=utf-8"
	}
	return &Invocation{Response: resp, Proc: proc, provider: p, procName: ia.procName}, nil
}

// ExportCheck decides whether an invocation's response may cross the
// perimeter toward viewer, applying §3.1's full export chain:
//
//  1. The viewer's own session privilege (s_viewer−) covers the
//     viewer's own taint — "destined for Bob's browser".
//  2. Every remaining secrecy tag is routed to its owner's authorized
//     declassifiers; an affirmative decision contributes the deposited
//     capability (and possibly a transformed payload — chameleon).
//  3. If residue remains, the export is denied and audited.
//
// On success it returns the (possibly transformed) body; the invocation
// process is exited either way. ExportCheck consumes the invocation:
// a second call is refused without touching the (already recycled)
// process.
func (p *Provider) ExportCheck(inv *Invocation, viewer string) ([]byte, error) {
	var u *User
	if viewer != "" {
		u, _ = p.GetUser(viewer) // nil u: unknown viewer exports with no session privilege
	}
	return p.exportCheck(inv, viewer, u)
}

// ExportCheckFor is ExportCheck with the viewer's account already
// resolved. The gateway's warm-session path passes the *User cached on
// its session record, so a keep-alive request pays no user-map lookup
// at export time — the session privilege and audit destination come off
// the immutable User minted at CreateUser.
func (p *Provider) ExportCheckFor(inv *Invocation, u *User) ([]byte, error) {
	if u == nil {
		// Tolerate a misuse like forwarding a failed GetUser result:
		// treat it as an anonymous export instead of panicking past the
		// release-CAS and the denial audit.
		return p.exportCheck(inv, "", nil)
	}
	return p.exportCheck(inv, u.Name, u)
}

func (p *Provider) exportCheck(inv *Invocation, viewer string, u *User) ([]byte, error) {
	if !inv.released.CompareAndSwap(false, true) {
		// Every denied export is audited; a consumed invocation must be
		// distinguishable in the log from a policy refusal. inv.procName,
		// not inv.Proc.Name(): the shell may already be serving another
		// request.
		p.Log.Appendf(audit.KindExportDenied, inv.procName,
			"viewer:"+viewer, "invocation already exported (caller bug)")
		return nil, ErrExportDenied
	}
	defer p.Kernel.Exit(inv.Proc)
	body := inv.Response.Body

	// The audit destination string and the viewer's session privilege are
	// both cached on the User at CreateUser; the common export allocates
	// neither.
	dest := "viewer:(anonymous)"
	sessionCaps := difc.EmptyCaps
	switch {
	case u != nil:
		sessionCaps = u.sessionCaps
		dest = u.exportDest
	case viewer != "":
		dest = "viewer:" + viewer
	}

	labels := inv.Proc.Labels()
	residue := difc.ExportResidue(labels.Secrecy, inv.Proc.Caps().Union(sessionCaps))
	extra := sessionCaps
	for _, tag := range residue.Tags() {
		owner, ok := p.TagOwner(tag)
		if !ok {
			p.Log.Appendf(audit.KindExportDenied, inv.Proc.Name(),
				dest, "unattributable taint %s", tag)
			return nil, ErrExportDenied // unattributable taint never leaves
		}
		d, caps, err := p.Declass.Ask(declass.Request{
			Owner:  owner,
			Viewer: viewer,
			App:    inv.Proc.Name(),
			Path:   "", // path is app-internal; audit carries app name
			Data:   body,
		})
		if err != nil || !d.Allow {
			p.Log.Appendf(audit.KindExportDenied, inv.Proc.Name(),
				dest, "owner %s policy refused (%v)", owner, err)
			return nil, ErrExportDenied
		}
		if d.Data != nil {
			body = d.Data
		}
		extra = extra.Union(caps)
	}
	if err := p.Kernel.Export(inv.Proc, extra, dest, len(body)); err != nil {
		return nil, ErrExportDenied
	}
	return body, nil
}
