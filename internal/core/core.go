package core
