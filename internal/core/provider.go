// Package core assembles the W5 meta-application: "a single logical
// machine on which applications and data are segregated" (§1).
//
// A Provider owns one instance of every trusted subsystem — the DIFC
// kernel, the labeled filesystem and tuple store, the module registry,
// the declassifier manager, quotas, and the audit log — and implements
// the user lifecycle the paper describes: account creation mints the
// user's secrecy tag s_u and write-protection tag w_u; "checking a box"
// to adopt an application is EnableApp; granting write access or
// authorizing a declassifier deposits exactly the corresponding
// capability and nothing more.
//
// Everything in internal/apps runs through AppEnv (appenv.go), which
// snapshots the calling process's labels before every storage operation
// and raises them afterward — untrusted code simply cannot forget to
// taint itself. The gateway (internal/gateway) is the only component
// that exports bytes, and it does so through Provider.ExportCheck.
package core

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"sort"
	"sync"

	"w5/internal/audit"
	"w5/internal/declass"
	"w5/internal/difc"
	"w5/internal/kernel"
	"w5/internal/quota"
	"w5/internal/registry"
	"w5/internal/store"
	"w5/internal/table"
	"w5/internal/wvm"
)

// Errors.
var (
	ErrUserExists   = errors.New("w5: user already exists")
	ErrNoUser       = errors.New("w5: no such user")
	ErrBadPassword  = errors.New("w5: authentication failed")
	ErrNoApp        = errors.New("w5: no such application")
	ErrNotEnabled   = errors.New("w5: user has not enabled this application")
	ErrExportDenied = errors.New("w5: export denied by policy")
)

// User is one end-user account. The two tags implement the paper's two
// default policies: data labeled {s_u} is private to u (boilerplate
// privacy), data with w_u in its integrity label is write-protected.
//
// The boilerplate label pair, the full-privilege session credential and
// the session declassification capability ({s_u−}) are minted once at
// CreateUser and cached: the request path hands out copies instead of
// re-deriving them per call. All cached values are immutable.
type User struct {
	Name       string
	SecrecyTag difc.Tag // s_u
	WriteTag   difc.Tag // w_u
	passSalt   []byte
	passHash   []byte

	labels      difc.LabelPair // {s_u} / {w_u}: the boilerplate default
	cred        store.Cred     // trusted session credential (owns both tags)
	sessionCaps difc.CapSet    // {s_u−}: "destined for u's browser"
	exportDest  string         // "viewer:<name>": audit destination string
}

// Config configures a Provider.
type Config struct {
	// Name identifies the provider (used in federation and audit).
	Name string
	// Enforce turns DIFC checking on (default in NewProvider; the E3
	// baseline sets it false).
	Enforce bool
	// AppLimits is the per-application quota budget (zero value =
	// quota.DefaultAppLimits()).
	AppLimits quota.Limits
	// NaiveTables selects the covert-channel-prone table store (the E7
	// comparator only).
	NaiveTables bool
	// DisableQuotas removes all resource limits (E8 baseline).
	DisableQuotas bool
	// StoreShards sets the labeled filesystem's lock-stripe count
	// (0 = store default). 1 selects the historical single-lock store;
	// benchmarks use it as the contention baseline.
	StoreShards int
	// Audit configures the audit log's segmented retention (segment
	// size, in-memory ring depth, spill directory, retention). The zero
	// value is the historical unbounded in-memory log. Ignored when
	// AuditLog is set.
	Audit audit.Options
	// AuditLog injects a pre-built audit log. cmd/w5d uses it so a spill
	// directory that cannot be opened fails startup loudly; when nil,
	// NewProvider opens one from Audit (degrading to memory-only — with
	// an audit event recording the degradation — if the spill directory
	// is unusable, since NewProvider cannot return an error).
	AuditLog *audit.Log
}

// Provider is one W5 deployment.
type Provider struct {
	Name     string
	Kernel   *kernel.Kernel
	FS       *store.FS
	Tables   *table.Store
	Registry *registry.Registry
	Declass  *declass.Manager
	Quotas   *quota.Manager
	Log      *audit.Log
	// Programs is the bounded compiled-WVM-program cache, keyed by
	// registry content hash; InstallWVMApp loads through it so each
	// published program compiles once platform-wide.
	Programs *wvm.Cache

	mu      sync.RWMutex
	users   map[string]*User
	tagUser map[difc.Tag]string        // s_u or w_u -> user name
	enabled map[string]map[string]bool // user -> app -> enabled ("checked the box")
	writes  map[string]map[string]bool // user -> app -> write granted
	goApps  map[string]installedApp    // installed native (Go) applications

	// appGrants is the incrementally maintained per-app capability cache:
	// the alternative — rescanning every registered user on every Invoke —
	// makes per-request cost O(platform population). Each grant/revoke
	// updates the tag sets in O(1) and marks the entry dirty; the
	// immutable CapSet/Label pair is rebuilt at most once per change, on
	// the next lookup, and then served lock-cheap and allocation-free.
	appGrants map[string]*appGrant
}

// appGrant tracks which user tags an application has been granted.
type appGrant struct {
	readers map[difc.Tag]struct{} // s_u of users who enabled the app
	writers map[difc.Tag]struct{} // w_u of users who granted write
	dirty   bool
	caps    difc.CapSet // cached: s_u+ for readers, w_u+ for writers
	endorse difc.Label  // cached: {w_u...} integrity endorsement
}

// rebuild rematerializes the immutable cached views from the tag sets.
// Called with the provider mutex held exclusively.
func (g *appGrant) rebuild() {
	plus := make([]difc.Tag, 0, len(g.readers)+len(g.writers))
	for t := range g.readers {
		plus = append(plus, t)
	}
	wr := make([]difc.Tag, 0, len(g.writers))
	for t := range g.writers {
		wr = append(wr, t)
	}
	g.endorse = difc.NewLabel(wr...)
	g.caps = difc.CapSetFromLabels(difc.NewLabel(append(plus, wr...)...), difc.EmptyLabel)
	g.dirty = false
}

// NewProvider builds a fully wired provider.
func NewProvider(cfg Config) *Provider {
	if cfg.Name == "" {
		cfg.Name = "w5"
	}
	log := cfg.AuditLog
	if log == nil {
		var err error
		log, err = audit.Open(cfg.Audit)
		if err != nil {
			o := cfg.Audit
			o.SpillDir = ""
			log, _ = audit.Open(o) // memory-only cannot fail
			log.Appendf(audit.KindPolicyChange, "provider", "audit",
				"spill disabled: %v", err)
		}
	}
	limits := cfg.AppLimits
	if limits == (quota.Limits{}) {
		limits = quota.DefaultAppLimits()
	}
	var qm *quota.Manager
	if !cfg.DisableQuotas {
		qm = quota.NewManager(limits)
	}
	k := kernel.New(kernel.Options{Enforce: cfg.Enforce, Log: log, Quotas: qm})
	fs := store.New(store.Options{Log: log, Quotas: qm, Shards: cfg.StoreShards})
	tbl := table.New(table.Options{Log: log, Quotas: qm, Naive: cfg.NaiveTables})
	reg := registry.New(log)

	p := &Provider{
		Name:      cfg.Name,
		Kernel:    k,
		FS:        fs,
		Tables:    tbl,
		Registry:  reg,
		Quotas:    qm,
		Log:       log,
		Programs:  wvm.NewCache(256),
		users:     make(map[string]*User),
		tagUser:   make(map[difc.Tag]string),
		enabled:   make(map[string]map[string]bool),
		writes:    make(map[string]map[string]bool),
		goApps:    make(map[string]installedApp),
		appGrants: make(map[string]*appGrant),
	}
	p.Declass = declass.NewManager(p.ownerEnv, log)
	// Declassifier verdicts may depend on the owner's stored data (the
	// friend list, group rosters). Any mutation under a user's home
	// advances that user's declassifier credential epoch, so cached
	// verdicts computed from the old data become unreachable — the
	// "edited friend list is a new epoch" invalidation argument
	// (internal/declass/README.md).
	fs.SetWriteObserver(func(parts []string) {
		if len(parts) >= 2 && parts[0] == "home" {
			p.Declass.Invalidate(parts[1])
		}
	})
	return p
}

// providerCred is the trusted credential used for platform-owned
// structures (directory skeletons); it owns nothing user-specific.
func providerCred() store.Cred {
	return store.Cred{Principal: "provider"}
}

// CreateUser provisions an account: mints s_u and w_u, builds the home
// directory skeleton, and stores the salted password hash.
//
// Home layout (all write-protected by w_u):
//
//	/home/<u>          public names, so apps can navigate
//	/home/<u>/private  secrecy {s_u}: the boilerplate default
//	/home/<u>/public   empty secrecy: what u has published
//	/home/<u>/social   secrecy {s_u}: friend lists, profile
func (p *Provider) CreateUser(name, password string) (*User, error) {
	if !userNameOK(name) {
		return nil, fmt.Errorf("w5: bad user name %q", name)
	}
	salt := make([]byte, 16)
	if _, err := rand.Read(salt); err != nil {
		// Never fall through to an all-zero salt: a failed entropy read
		// must fail account creation, not silently weaken every hash.
		return nil, fmt.Errorf("w5: minting password salt: %w", err)
	}
	h := hashPassword(salt, password)

	p.mu.Lock()
	if _, dup := p.users[name]; dup {
		p.mu.Unlock()
		return nil, ErrUserExists
	}
	sTag := p.Kernel.MintTag(nil, "s_"+name)
	wTag := p.Kernel.MintTag(nil, "w_"+name)
	wp := difc.NewLabel(wTag)
	u := &User{
		Name: name, SecrecyTag: sTag, WriteTag: wTag,
		passSalt: salt, passHash: h,
		labels: difc.LabelPair{Secrecy: difc.NewLabel(sTag), Integrity: wp},
		cred: store.Cred{
			Labels:    difc.LabelPair{Integrity: wp},
			Caps:      difc.CapsFor(sTag, wTag),
			Principal: "user:" + name,
		},
		sessionCaps: difc.NewCapSet(difc.Minus(sTag)),
		exportDest:  "viewer:" + name,
	}
	p.users[name] = u
	p.tagUser[sTag] = name
	p.tagUser[wTag] = name
	p.mu.Unlock()

	cred := u.cred
	if err := p.FS.MkdirAll(providerCred(), "/home", difc.LabelPair{}); err != nil && !errors.Is(err, store.ErrExists) {
		return nil, err
	}
	dirs := []struct {
		path  string
		label difc.LabelPair
	}{
		{"/home/" + name, difc.LabelPair{Integrity: wp}},
		{"/home/" + name + "/private", difc.LabelPair{Secrecy: difc.NewLabel(sTag), Integrity: wp}},
		{"/home/" + name + "/public", difc.LabelPair{Integrity: wp}},
		{"/home/" + name + "/social", difc.LabelPair{Secrecy: difc.NewLabel(sTag), Integrity: wp}},
	}
	for _, d := range dirs {
		if err := p.FS.Mkdir(cred, d.path, d.label); err != nil {
			return nil, fmt.Errorf("w5: provisioning %s: %w", d.path, err)
		}
	}
	p.Log.Appendf(audit.KindLogin, name, "account", "created with tags %s %s", sTag, wTag)
	return u, nil
}

// reservedNames are system actors that appear in the audit trail (and
// in federation peer/provider identities); an account with one of
// these names could impersonate them to the gateway's per-user audit
// view.
var reservedNames = map[string]bool{
	"provider": true, "gateway": true, "kernel": true, "audit": true,
}

// userNameOK restricts account names to [a-zA-Z0-9_-], 1..64 bytes,
// excluding reserved system actors. The charset matters for security,
// not taste: ':' would let a name collide with the platform's
// namespaced principals ("user:bob", "app:social", "viewer:bob",
// "peer:x") and '/' would let it embed path structure under /home/ —
// both of which would fool string-matched audit filtering
// (gateway.auditConcerns) into showing one user another's events.
func userNameOK(name string) bool {
	if name == "" || len(name) > 64 || reservedNames[name] {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z',
			'0' <= c && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func hashPassword(salt []byte, password string) []byte {
	h := sha256.New()
	h.Write(salt)
	h.Write([]byte(password))
	// Stretch a little; real systems would use a KDF, but the module
	// must stay stdlib-only and the threat model here is architectural.
	sum := h.Sum(nil)
	for i := 0; i < 4096; i++ {
		s := sha256.Sum256(sum)
		sum = s[:]
	}
	return sum
}

// Authenticate verifies a password.
func (p *Provider) Authenticate(name, password string) bool {
	p.mu.RLock()
	u, ok := p.users[name]
	p.mu.RUnlock()
	if !ok {
		return false
	}
	want := hashPassword(u.passSalt, password)
	return subtle.ConstantTimeCompare(want, u.passHash) == 1
}

// GetUser looks up an account.
func (p *Provider) GetUser(name string) (*User, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	u, ok := p.users[name]
	if !ok {
		return nil, ErrNoUser
	}
	return u, nil
}

// Users lists account names, sorted.
func (p *Provider) Users() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.users))
	for n := range p.users {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TagOwner resolves a tag to the user who owns it; the gateway uses it
// to route residual secrecy tags to the right user's declassifiers.
func (p *Provider) TagOwner(t difc.Tag) (string, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	u, ok := p.tagUser[t]
	return u, ok
}

// UserCred is the full-privilege credential of the user's own trusted
// session: it owns both of u's tags. Only provider code acting directly
// for the authenticated user (the gateway session, the declassifier
// Env) uses it; applications never see it.
func (p *Provider) UserCred(name string) store.Cred {
	p.mu.RLock()
	u, ok := p.users[name]
	p.mu.RUnlock()
	if !ok {
		return store.Cred{Principal: "user:" + name}
	}
	return u.cred // minted once at CreateUser; immutable
}

// UserTableCred is UserCred shaped for the tuple store.
func (p *Provider) UserTableCred(name string) table.Cred {
	c := p.UserCred(name)
	return table.Cred{Labels: c.Labels, Caps: c.Caps, Principal: c.Principal}
}

// ownerEnv builds the declassifier Env for an owner: reads run with the
// owner's own credential, scoped under the owner's home directory.
func (p *Provider) ownerEnv(owner string) declass.Env {
	return &userEnv{p: p, owner: owner}
}

type userEnv struct {
	p     *Provider
	owner string
}

func (e *userEnv) ReadOwnerFile(path string) ([]byte, error) {
	if len(path) == 0 || path[0] != '/' {
		return nil, store.ErrBadPath
	}
	full := "/home/" + e.owner + path
	// Zero-copy read: declassifier policies are provider-trusted code
	// and must treat the slice as read-only (store payload contract).
	data, _, err := e.p.FS.Read(e.p.UserCred(e.owner), full)
	return data, err
}

// EnableApp is the paper's one-checkbox adoption (§1): it grants the
// application the right to READ u's data (the s_u+ capability) — and
// nothing else. Experiment E1 counts the operations this replaces.
func (p *Provider) EnableApp(user, app string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	u, ok := p.users[user]
	if !ok {
		return ErrNoUser
	}
	if p.enabled[user] == nil {
		p.enabled[user] = make(map[string]bool)
	}
	p.enabled[user][app] = true
	g := p.grantEntry(app)
	g.readers[u.SecrecyTag] = struct{}{}
	g.dirty = true
	p.Log.Appendf(audit.KindGrant, user, app, "enabled (read grant)")
	return nil
}

// DisableApp withdraws the read grant.
func (p *Provider) DisableApp(user, app string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.enabled[user] != nil {
		delete(p.enabled[user], app)
	}
	if u, ok := p.users[user]; ok {
		if g := p.appGrants[app]; g != nil {
			delete(g.readers, u.SecrecyTag)
			g.dirty = true
		}
	}
	p.Log.Appendf(audit.KindRevoke, user, app, "disabled")
}

// grantEntry returns app's capability-cache entry, creating it if needed.
// Called with the provider mutex held exclusively.
func (p *Provider) grantEntry(app string) *appGrant {
	g := p.appGrants[app]
	if g == nil {
		g = &appGrant{
			readers: make(map[difc.Tag]struct{}),
			writers: make(map[difc.Tag]struct{}),
		}
		p.appGrants[app] = g
	}
	return g
}

// AppEnabled reports whether user has enabled app.
func (p *Provider) AppEnabled(user, app string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.enabled[user][app]
}

// GrantWrite lets app write u's data faithfully (§3.1 "Write
// Protection"): the app's processes may endorse with w_u.
func (p *Provider) GrantWrite(user, app string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	u, ok := p.users[user]
	if !ok {
		return ErrNoUser
	}
	if p.writes[user] == nil {
		p.writes[user] = make(map[string]bool)
	}
	p.writes[user][app] = true
	g := p.grantEntry(app)
	g.writers[u.WriteTag] = struct{}{}
	g.dirty = true
	p.Log.Appendf(audit.KindGrant, user, app, "write grant (w_u+)")
	return nil
}

// RevokeWrite withdraws the write grant.
func (p *Provider) RevokeWrite(user, app string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.writes[user] != nil {
		delete(p.writes[user], app)
	}
	if u, ok := p.users[user]; ok {
		if g := p.appGrants[app]; g != nil {
			delete(g.writers, u.WriteTag)
			g.dirty = true
		}
	}
	p.Log.Appendf(audit.KindRevoke, user, app, "write grant revoked")
}

// AuthorizeDeclassifier deposits u's export privilege (s_u−) with a
// policy — §3.1's "he must grant an appropriate declassifier his data
// export privileges".
func (p *Provider) AuthorizeDeclassifier(user string, policy declass.Policy) error {
	p.mu.RLock()
	u, ok := p.users[user]
	p.mu.RUnlock()
	if !ok {
		return ErrNoUser
	}
	p.Declass.Authorize(user, policy, u.sessionCaps)
	return nil
}

// appCaps returns the capability set an application process runs with:
// s_u+ for every user who enabled it, plus w_u+ (and the w_u integrity
// endorsement) for users who granted write.
//
// The values come from the incrementally maintained per-app cache, so a
// lookup is O(1) in the user population and allocation-free; only the
// first lookup after a grant/revoke pays the O(grants-to-this-app)
// rebuild. Invalidation is safe under p.mu: every mutation marks the
// entry dirty inside the same critical section that changes the grant.
func (p *Provider) appCaps(app string) (difc.CapSet, difc.Label) {
	p.mu.RLock()
	g := p.appGrants[app]
	if g == nil {
		p.mu.RUnlock()
		return difc.EmptyCaps, difc.EmptyLabel
	}
	if !g.dirty {
		caps, endorse := g.caps, g.endorse
		p.mu.RUnlock()
		return caps, endorse
	}
	p.mu.RUnlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	g = p.appGrants[app]
	if g == nil {
		return difc.EmptyCaps, difc.EmptyLabel
	}
	if g.dirty {
		g.rebuild()
	}
	return g.caps, g.endorse
}

// installedApp pairs an App with its precomputed process/billing name so
// Invoke does not rebuild the "app:<name>" string per request.
type installedApp struct {
	app      App
	procName string
}

// InstallApp registers a native (Go) application implementation under
// its name. Native apps model the compiled modules of §2; they receive
// only an AppEnv, never raw subsystem handles, so they are confined
// exactly like bytecode apps.
func (p *Provider) InstallApp(app App) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.goApps[app.Name()] = installedApp{app: app, procName: "app:" + app.Name()}
	p.Log.Appendf(audit.KindUpload, "provider", app.Name(), "native app installed")
}

// AppNames lists installed native apps, sorted.
func (p *Provider) AppNames() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.goApps))
	for n := range p.goApps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (p *Provider) lookupApp(name string) (installedApp, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	a, ok := p.goApps[name]
	return a, ok
}

// AppInstalled reports whether an app with the given name is
// installed and invokable. The gateway uses it to decide whether an
// enable request should first install the module from the registry.
func (p *Provider) AppInstalled(name string) bool {
	_, ok := p.lookupApp(name)
	return ok
}
