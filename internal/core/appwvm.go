package core

import (
	"fmt"

	"w5/internal/wvm"
)

// WVM application ABI: the syscall surface a developer-uploaded
// bytecode application codes against (§2's "API exposed by the W5
// platform"). Everything flows through the AppEnv, so bytecode apps get
// auto-tainting reads and label-checked writes exactly like native
// apps.
//
//	copy_viewer(addr)                      -> len
//	copy_owner(addr)                       -> len
//	copy_param(keyAddr,keyLen,dst,cap)     -> len or -1
//	read_file(pathAddr,pathLen,dst,cap)    -> n or -1   (taints process)
//	write_private(pathA,pathL,dataA,dataL) -> 0 or -1   (owner's boilerplate label)
//	emit(addr,len)                         -> len       (append to response body)
const (
	AppSysCopyViewer   uint16 = 1
	AppSysCopyOwner    uint16 = 2
	AppSysCopyParam    uint16 = 3
	AppSysReadFile     uint16 = 4
	AppSysWritePrivate uint16 = 5
	AppSysEmit         uint16 = 6
)

// AppSyscallNames maps assembly names to the app ABI numbers.
var AppSyscallNames = map[string]uint16{
	"copy_viewer":   AppSysCopyViewer,
	"copy_owner":    AppSysCopyOwner,
	"copy_param":    AppSysCopyParam,
	"read_file":     AppSysReadFile,
	"write_private": AppSysWritePrivate,
	"emit":          AppSysEmit,
}

// WVMApp adapts an uploaded bytecode module to the App interface. The
// module's exit value becomes the HTTP status (0 meaning 200).
type WVMApp struct {
	// AppName is the registry name the module was uploaded under.
	AppName string
	// Prog is the verified module.
	Prog *wvm.Program
	// Gas bounds one request (default 1_000_000 instructions; the
	// process's CPU quota applies on top).
	Gas uint64
	// MemSize bounds guest memory (default 64 KiB).
	MemSize int
}

// Name implements App.
func (w WVMApp) Name() string { return w.AppName }

// Handle implements App by executing the module under the request.
func (w WVMApp) Handle(env *AppEnv, req AppRequest) (AppResponse, error) {
	gas := w.Gas
	if gas == 0 {
		gas = 1_000_000
	}
	var body []byte

	copyStr := func(vm *wvm.VM, addr int64, s string) ([]int64, error) {
		if err := vm.WriteMem(addr, []byte(s)); err != nil {
			return []int64{-1}, nil
		}
		return []int64{int64(len(s))}, nil
	}

	table := wvm.SyscallTable{
		AppSysCopyViewer: {Name: "copy_viewer", Arity: 1,
			Fn: func(vm *wvm.VM, a []int64) ([]int64, error) { return copyStr(vm, a[0], req.Viewer) }},
		AppSysCopyOwner: {Name: "copy_owner", Arity: 1,
			Fn: func(vm *wvm.VM, a []int64) ([]int64, error) { return copyStr(vm, a[0], req.Owner) }},
		AppSysCopyParam: {Name: "copy_param", Arity: 4,
			Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
				key, err := vm.ReadMem(a[0], a[1])
				if err != nil {
					return []int64{-1}, nil
				}
				v, ok := req.Params[string(key)]
				if !ok {
					return []int64{-1}, nil
				}
				if int64(len(v)) > a[3] {
					v = v[:a[3]]
				}
				if err := vm.WriteMem(a[2], []byte(v)); err != nil {
					return []int64{-1}, nil
				}
				return []int64{int64(len(v))}, nil
			}},
		AppSysReadFile: {Name: "read_file", Arity: 4,
			Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
				path, err := vm.ReadMem(a[0], a[1])
				if err != nil {
					return []int64{-1}, nil
				}
				data, err := env.ReadFile(string(path))
				if err != nil {
					return []int64{-1}, nil
				}
				if int64(len(data)) > a[3] {
					data = data[:a[3]]
				}
				if err := vm.WriteMem(a[2], data); err != nil {
					return []int64{-1}, nil
				}
				return []int64{int64(len(data))}, nil
			}},
		AppSysWritePrivate: {Name: "write_private", Arity: 4,
			Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
				path, err := vm.ReadMem(a[0], a[1])
				if err != nil {
					return []int64{-1}, nil
				}
				data, err := vm.ReadMem(a[2], a[3])
				if err != nil {
					return []int64{-1}, nil
				}
				label, err := env.UserLabel(req.Owner)
				if err != nil {
					return []int64{-1}, nil
				}
				if err := env.WriteFile(string(path), data, label); err != nil {
					return []int64{-1}, nil
				}
				return []int64{0}, nil
			}},
		AppSysEmit: {Name: "emit", Arity: 2,
			Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
				chunk, err := vm.ReadMem(a[0], a[1])
				if err != nil {
					return []int64{-1}, nil
				}
				body = append(body, chunk...)
				return []int64{int64(len(chunk))}, nil
			}},
	}

	vm := wvm.New(w.Prog, wvm.Config{
		Gas:      gas,
		MemSize:  w.MemSize,
		Syscalls: table,
		Account:  env.proc.Account(),
	})
	status, err := vm.Run()
	if err != nil {
		return AppResponse{}, fmt.Errorf("module fault: %w", err)
	}
	if status == 0 {
		status = 200
	}
	return AppResponse{Status: int(status), Body: body}, nil
}

// InstallWVMApp registers an uploaded module (by registry name/version)
// as a runnable application.
func (p *Provider) InstallWVMApp(module, version string) error {
	v, err := p.Registry.Get(module, version)
	if err != nil {
		return err
	}
	prog, err := v.Program()
	if err != nil {
		return err
	}
	p.InstallApp(WVMApp{AppName: module, Prog: prog})
	return nil
}
