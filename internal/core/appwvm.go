package core

import (
	"encoding/base64"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"w5/internal/audit"
	"w5/internal/store"
	"w5/internal/table"
	"w5/internal/wvm"
)

// WVM application ABI: the syscall surface a developer-uploaded
// bytecode application codes against (§2's "API exposed by the W5
// platform"). Everything flows through the AppEnv, so bytecode apps get
// auto-tainting reads and label-checked writes exactly like native
// apps. Syscalls report failures as status codes (-1, or -2 where
// distinguished), never by aborting the program, so untrusted code can
// handle them.
//
// Request and response:
//
//	copy_viewer(addr)                      -> len
//	copy_owner(addr)                       -> len
//	copy_param(keyAddr,keyLen,dst,cap)     -> len or -1 (missing)
//	copy_path(dst,cap)                     -> len
//	is_post()                              -> 1 if method is POST
//	param_b64(keyA,keyL,dst,cap)           -> decoded len or -1 (bad base64)
//	content_type(k)                        -> 0  (k=1 text/plain, else text/html)
//	emit(addr,len)                         -> len (append to response body)
//	emit_esc(addr,len)                     -> emitted len (HTML-escaped)
//	emit_int(v)                            -> emitted len (decimal)
//	emit_b64(addr,len)                     -> emitted len (std base64)
//	fmt_int(v,dst,cap)                     -> len or -1
//	owner_ok()                             -> 1 if req.Owner is a real account
//
// Files (all paths are AppEnv-mediated: reads taint, writes are
// label-checked):
//
//	read_file(pathAddr,pathLen,dst,cap)    -> n or -1   (taints process)
//	write_private(pathA,pathL,dataA,dataL) -> 0 or -1   (owner's boilerplate label)
//	stat(pathA,pathL)                      -> 0 or -1
//	mkdir_owner(pathA,pathL)               -> 0 or -1   (owner's boilerplate label)
//	remove(pathA,pathL)                    -> 0 or -1
//	list_dir(pathA,pathL)                  -> count or -1; then
//	dir_name(i,dst,cap)                    -> len or -1
//	dir_size(i)                            -> size or -1
//	dir_version(i)                         -> version or -1
//
// Labeled tuple store (query predicates and insert values are staged
// column-by-column, so arbitrary byte values need no quoting):
//
//	table_create(nA,nL,colsA,colsL,idxA,idxL) -> 0 or -1 (comma-separated lists)
//	q_filter(colA,colL,valA,valL)          -> 0   (AND an equality onto the next query)
//	table_query(nameA,nameL)               -> row count or -1; then
//	row_id(i)                              -> id or -1
//	row_get(i,colA,colL,dst,cap)           -> len or -1
//	ins_set(colA,colL,valA,valL)           -> 0   (stage a value for the next insert)
//	table_insert(nameA,nameL,pub)          -> id, -1 (denied) or -2 (no such owner);
//	                                          pub!=0 uses the owner's public label
const (
	AppSysCopyViewer   uint16 = 1
	AppSysCopyOwner    uint16 = 2
	AppSysCopyParam    uint16 = 3
	AppSysReadFile     uint16 = 4
	AppSysWritePrivate uint16 = 5
	AppSysEmit         uint16 = 6
	AppSysCopyPath     uint16 = 7
	AppSysIsPost       uint16 = 8
	AppSysContentType  uint16 = 9
	AppSysEmitEsc      uint16 = 10
	AppSysEmitInt      uint16 = 11
	AppSysEmitB64      uint16 = 12
	AppSysFmtInt       uint16 = 13
	AppSysOwnerOK      uint16 = 14
	AppSysStat         uint16 = 15
	AppSysMkdirOwner   uint16 = 16
	AppSysRemove       uint16 = 17
	AppSysListDir      uint16 = 18
	AppSysDirName      uint16 = 19
	AppSysDirSize      uint16 = 20
	AppSysDirVersion   uint16 = 21
	AppSysParamB64     uint16 = 22
	AppSysTableCreate  uint16 = 23
	AppSysQFilter      uint16 = 24
	AppSysTableQuery   uint16 = 25
	AppSysRowID        uint16 = 26
	AppSysRowGet       uint16 = 27
	AppSysInsSet       uint16 = 28
	AppSysTableInsert  uint16 = 29
)

// AppSyscallNames maps assembly names to the app ABI numbers.
var AppSyscallNames = map[string]uint16{
	"copy_viewer":   AppSysCopyViewer,
	"copy_owner":    AppSysCopyOwner,
	"copy_param":    AppSysCopyParam,
	"read_file":     AppSysReadFile,
	"write_private": AppSysWritePrivate,
	"emit":          AppSysEmit,
	"copy_path":     AppSysCopyPath,
	"is_post":       AppSysIsPost,
	"content_type":  AppSysContentType,
	"emit_esc":      AppSysEmitEsc,
	"emit_int":      AppSysEmitInt,
	"emit_b64":      AppSysEmitB64,
	"fmt_int":       AppSysFmtInt,
	"owner_ok":      AppSysOwnerOK,
	"stat":          AppSysStat,
	"mkdir_owner":   AppSysMkdirOwner,
	"remove":        AppSysRemove,
	"list_dir":      AppSysListDir,
	"dir_name":      AppSysDirName,
	"dir_size":      AppSysDirSize,
	"dir_version":   AppSysDirVersion,
	"param_b64":     AppSysParamB64,
	"table_create":  AppSysTableCreate,
	"q_filter":      AppSysQFilter,
	"table_query":   AppSysTableQuery,
	"row_id":        AppSysRowID,
	"row_get":       AppSysRowGet,
	"ins_set":       AppSysInsSet,
	"table_insert":  AppSysTableInsert,
}

// ErrAppQuota marks a WVM program killed mid-request for exhausting its
// gas or memory budget (the §3.5 "rogue application" bound). The
// gateway maps it to 429 instead of the generic 500: the platform is
// healthy, the app is over budget.
var ErrAppQuota = errors.New("w5: application exceeded its resource quota")

// wvmHost is the per-request context the shared syscall table reads
// through vm.Host: the app environment, the response under
// construction, and the staged/cached state of the cursor-style
// syscalls. Hosts are pooled; putHost scrubs everything.
type wvmHost struct {
	env *AppEnv
	req *AppRequest

	body []byte // response body under construction (capacity retained)
	ct   int64  // 0 = text/html (default), 1 = text/plain

	dir []store.Info // list_dir result, read by dir_* cursors

	qpred  table.Pred  // staged query predicate (q_filter chain)
	rows   []table.Row // table_query result, read by row_* cursors
	staged map[string]string

	num [24]byte // fmt_int scratch
}

var wvmHostPool = sync.Pool{New: func() any { return new(wvmHost) }}

func putHost(h *wvmHost) {
	h.env, h.req = nil, nil
	h.body = h.body[:0]
	h.ct = 0
	h.dir = nil
	h.qpred = nil
	h.rows = nil
	h.staged = nil
	wvmHostPool.Put(h)
}

var wvmVMPool = sync.Pool{New: func() any { return new(wvm.VM) }}

// host extracts the request context; the table below is only ever
// installed by WVMApp.Handle, which always plants a *wvmHost.
func host(vm *wvm.VM) *wvmHost { return vm.Host.(*wvmHost) }

// memStr reads a guest string without the ReadMem copy; the string
// conversion is the single copy.
func memStr(vm *wvm.VM, addr, n int64) (string, bool) {
	b, err := vm.Mem(addr, n)
	if err != nil {
		return "", false
	}
	return string(b), true
}

// copyOut writes s (truncated to cap) into guest memory and returns the
// ABI result: written length, or -1 on a bounds fault.
func copyOut(vm *wvm.VM, dst, cap int64, s string) []int64 {
	if cap >= 0 && int64(len(s)) > cap {
		s = s[:cap]
	}
	if err := vm.WriteMem(dst, []byte(s)); err != nil {
		return vm.Ret1(-1)
	}
	return vm.Ret1(int64(len(s)))
}

// appendEscaped appends the HTML-escaped form of b, byte-identical to
// html.EscapeString (which native apps use) without the intermediate
// string allocations.
func appendEscaped(dst, b []byte) []byte {
	for _, c := range b {
		switch c {
		case '&':
			dst = append(dst, "&amp;"...)
		case '\'':
			dst = append(dst, "&#39;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		case '"':
			dst = append(dst, "&#34;"...)
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// splitList splits a comma-separated syscall argument; empty means nil.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// appSyscalls is the single immutable syscall table shared by every WVM
// app invocation. Building the table per request was the bridge's
// dominant allocation cost; per-request state lives on the pooled
// wvmHost instead.
var appSyscalls = wvm.SyscallTable{
	AppSysCopyViewer: {Name: "copy_viewer", Arity: 1,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			return copyOut(vm, a[0], -1, host(vm).req.Viewer), nil
		}},
	AppSysCopyOwner: {Name: "copy_owner", Arity: 1,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			return copyOut(vm, a[0], -1, host(vm).req.Owner), nil
		}},
	AppSysCopyParam: {Name: "copy_param", Arity: 4,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			key, ok := memStr(vm, a[0], a[1])
			if !ok {
				return vm.Ret1(-1), nil
			}
			v, ok := host(vm).req.Params[key]
			if !ok {
				return vm.Ret1(-1), nil
			}
			return copyOut(vm, a[2], a[3], v), nil
		}},
	AppSysReadFile: {Name: "read_file", Arity: 4,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			path, ok := memStr(vm, a[0], a[1])
			if !ok {
				return vm.Ret1(-1), nil
			}
			data, err := host(vm).env.ReadFile(path)
			if err != nil {
				return vm.Ret1(-1), nil
			}
			if int64(len(data)) > a[3] {
				data = data[:a[3]]
			}
			if err := vm.WriteMem(a[2], data); err != nil {
				return vm.Ret1(-1), nil
			}
			return vm.Ret1(int64(len(data))), nil
		}},
	AppSysWritePrivate: {Name: "write_private", Arity: 4,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			h := host(vm)
			path, ok := memStr(vm, a[0], a[1])
			if !ok {
				return vm.Ret1(-1), nil
			}
			data, err := vm.ReadMem(a[2], a[3])
			if err != nil {
				return vm.Ret1(-1), nil
			}
			label, err := h.env.UserLabel(h.req.Owner)
			if err != nil {
				return vm.Ret1(-1), nil
			}
			if err := h.env.WriteFile(path, data, label); err != nil {
				return vm.Ret1(-1), nil
			}
			return vm.Ret1(0), nil
		}},
	AppSysEmit: {Name: "emit", Arity: 2,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			chunk, err := vm.Mem(a[0], a[1])
			if err != nil {
				return vm.Ret1(-1), nil
			}
			h := host(vm)
			h.body = append(h.body, chunk...)
			return vm.Ret1(int64(len(chunk))), nil
		}},
	AppSysCopyPath: {Name: "copy_path", Arity: 2,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			return copyOut(vm, a[0], a[1], host(vm).req.Path), nil
		}},
	AppSysIsPost: {Name: "is_post", Arity: 0,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			if host(vm).req.Method == "POST" {
				return vm.Ret1(1), nil
			}
			return vm.Ret1(0), nil
		}},
	AppSysContentType: {Name: "content_type", Arity: 1,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			host(vm).ct = a[0]
			return vm.Ret1(0), nil
		}},
	AppSysEmitEsc: {Name: "emit_esc", Arity: 2,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			chunk, err := vm.Mem(a[0], a[1])
			if err != nil {
				return vm.Ret1(-1), nil
			}
			h := host(vm)
			n := len(h.body)
			h.body = appendEscaped(h.body, chunk)
			return vm.Ret1(int64(len(h.body) - n)), nil
		}},
	AppSysEmitInt: {Name: "emit_int", Arity: 1,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			h := host(vm)
			n := len(h.body)
			h.body = strconv.AppendInt(h.body, a[0], 10)
			return vm.Ret1(int64(len(h.body) - n)), nil
		}},
	AppSysEmitB64: {Name: "emit_b64", Arity: 2,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			chunk, err := vm.Mem(a[0], a[1])
			if err != nil {
				return vm.Ret1(-1), nil
			}
			h := host(vm)
			n := len(h.body)
			h.body = base64.StdEncoding.AppendEncode(h.body, chunk)
			return vm.Ret1(int64(len(h.body) - n)), nil
		}},
	AppSysFmtInt: {Name: "fmt_int", Arity: 3,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			h := host(vm)
			s := strconv.AppendInt(h.num[:0], a[0], 10)
			if int64(len(s)) > a[2] {
				return vm.Ret1(-1), nil
			}
			if err := vm.WriteMem(a[1], s); err != nil {
				return vm.Ret1(-1), nil
			}
			return vm.Ret1(int64(len(s))), nil
		}},
	AppSysOwnerOK: {Name: "owner_ok", Arity: 0,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			h := host(vm)
			if _, err := h.env.UserLabel(h.req.Owner); err != nil {
				return vm.Ret1(0), nil
			}
			return vm.Ret1(1), nil
		}},
	AppSysStat: {Name: "stat", Arity: 2,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			path, ok := memStr(vm, a[0], a[1])
			if !ok {
				return vm.Ret1(-1), nil
			}
			if _, err := host(vm).env.Stat(path); err != nil {
				return vm.Ret1(-1), nil
			}
			return vm.Ret1(0), nil
		}},
	AppSysMkdirOwner: {Name: "mkdir_owner", Arity: 2,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			h := host(vm)
			path, ok := memStr(vm, a[0], a[1])
			if !ok {
				return vm.Ret1(-1), nil
			}
			label, err := h.env.UserLabel(h.req.Owner)
			if err != nil {
				return vm.Ret1(-1), nil
			}
			if err := h.env.Mkdir(path, label); err != nil {
				return vm.Ret1(-1), nil
			}
			return vm.Ret1(0), nil
		}},
	AppSysRemove: {Name: "remove", Arity: 2,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			path, ok := memStr(vm, a[0], a[1])
			if !ok {
				return vm.Ret1(-1), nil
			}
			if err := host(vm).env.Remove(path); err != nil {
				return vm.Ret1(-1), nil
			}
			return vm.Ret1(0), nil
		}},
	AppSysListDir: {Name: "list_dir", Arity: 2,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			h := host(vm)
			path, ok := memStr(vm, a[0], a[1])
			if !ok {
				return vm.Ret1(-1), nil
			}
			infos, err := h.env.List(path)
			if err != nil {
				return vm.Ret1(-1), nil
			}
			h.dir = infos
			return vm.Ret1(int64(len(infos))), nil
		}},
	AppSysDirName: {Name: "dir_name", Arity: 3,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			h := host(vm)
			if a[0] < 0 || a[0] >= int64(len(h.dir)) {
				return vm.Ret1(-1), nil
			}
			return copyOut(vm, a[1], a[2], h.dir[a[0]].Name), nil
		}},
	AppSysDirSize: {Name: "dir_size", Arity: 1,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			h := host(vm)
			if a[0] < 0 || a[0] >= int64(len(h.dir)) {
				return vm.Ret1(-1), nil
			}
			return vm.Ret1(int64(h.dir[a[0]].Size)), nil
		}},
	AppSysDirVersion: {Name: "dir_version", Arity: 1,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			h := host(vm)
			if a[0] < 0 || a[0] >= int64(len(h.dir)) {
				return vm.Ret1(-1), nil
			}
			return vm.Ret1(int64(h.dir[a[0]].Version)), nil
		}},
	AppSysParamB64: {Name: "param_b64", Arity: 4,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			key, ok := memStr(vm, a[0], a[1])
			if !ok {
				return vm.Ret1(-1), nil
			}
			data, err := base64.StdEncoding.DecodeString(host(vm).req.Params[key])
			if err != nil {
				return vm.Ret1(-1), nil
			}
			if int64(len(data)) > a[3] {
				data = data[:a[3]]
			}
			if err := vm.WriteMem(a[2], data); err != nil {
				return vm.Ret1(-1), nil
			}
			return vm.Ret1(int64(len(data))), nil
		}},
	AppSysTableCreate: {Name: "table_create", Arity: 6,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			name, ok1 := memStr(vm, a[0], a[1])
			cols, ok2 := memStr(vm, a[2], a[3])
			idx, ok3 := memStr(vm, a[4], a[5])
			if !ok1 || !ok2 || !ok3 {
				return vm.Ret1(-1), nil
			}
			err := host(vm).env.CreateTable(table.Schema{
				Name:    name,
				Columns: splitList(cols),
				Index:   splitList(idx),
			})
			if err != nil {
				return vm.Ret1(-1), nil
			}
			return vm.Ret1(0), nil
		}},
	AppSysQFilter: {Name: "q_filter", Arity: 4,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			col, ok1 := memStr(vm, a[0], a[1])
			val, ok2 := memStr(vm, a[2], a[3])
			if !ok1 || !ok2 {
				return vm.Ret1(-1), nil
			}
			h := host(vm)
			cmp := table.Cmp{Col: col, Op: table.Eq, Val: val}
			// Chained exactly like the native apps build their
			// predicates, so the stores see identical query trees.
			if h.qpred == nil {
				h.qpred = cmp
			} else {
				h.qpred = table.And{L: h.qpred, R: cmp}
			}
			return vm.Ret1(0), nil
		}},
	AppSysTableQuery: {Name: "table_query", Arity: 2,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			h := host(vm)
			name, ok := memStr(vm, a[0], a[1])
			pred := h.qpred
			h.qpred = nil // staged filters are consumed either way
			if !ok || pred == nil {
				return vm.Ret1(-1), nil
			}
			rows, err := h.env.Select(name, pred)
			if err != nil {
				return vm.Ret1(-1), nil
			}
			h.rows = rows
			return vm.Ret1(int64(len(rows))), nil
		}},
	AppSysRowID: {Name: "row_id", Arity: 1,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			h := host(vm)
			if a[0] < 0 || a[0] >= int64(len(h.rows)) {
				return vm.Ret1(-1), nil
			}
			return vm.Ret1(int64(h.rows[a[0]].ID)), nil
		}},
	AppSysRowGet: {Name: "row_get", Arity: 5,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			h := host(vm)
			if a[0] < 0 || a[0] >= int64(len(h.rows)) {
				return vm.Ret1(-1), nil
			}
			col, ok := memStr(vm, a[1], a[2])
			if !ok {
				return vm.Ret1(-1), nil
			}
			return copyOut(vm, a[3], a[4], h.rows[a[0]].Values[col]), nil
		}},
	AppSysInsSet: {Name: "ins_set", Arity: 4,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			col, ok1 := memStr(vm, a[0], a[1])
			val, ok2 := memStr(vm, a[2], a[3])
			if !ok1 || !ok2 {
				return vm.Ret1(-1), nil
			}
			h := host(vm)
			if h.staged == nil {
				h.staged = make(map[string]string, 8)
			}
			h.staged[col] = val
			return vm.Ret1(0), nil
		}},
	AppSysTableInsert: {Name: "table_insert", Arity: 3,
		Fn: func(vm *wvm.VM, a []int64) ([]int64, error) {
			h := host(vm)
			name, ok := memStr(vm, a[0], a[1])
			values := h.staged
			h.staged = nil // consumed either way; the store retains the map
			if !ok || values == nil {
				return vm.Ret1(-1), nil
			}
			label, err := h.env.UserLabel(h.req.Owner)
			if err == nil && a[2] != 0 {
				label, err = h.env.PublicLabel(h.req.Owner)
			}
			if err != nil {
				return vm.Ret1(-2), nil
			}
			id, err := h.env.Insert(name, values, label)
			if err != nil {
				return vm.Ret1(-1), nil
			}
			return vm.Ret1(int64(id)), nil
		}},
}

// WVMApp adapts an uploaded bytecode module to the App interface. The
// module's exit value becomes the HTTP status (0 meaning 200). Methods
// are on the pointer: the app caches its compiled form.
type WVMApp struct {
	// AppName is the registry name the module was uploaded under.
	AppName string
	// Prog is the verified module.
	Prog *wvm.Program
	// Gas bounds one request (default 1_000_000 instructions; the
	// process's CPU quota applies on top).
	Gas uint64
	// MemSize bounds guest memory (default 64 KiB).
	MemSize int

	compileOnce sync.Once
	comp        *wvm.Compiled
	compileErr  error
}

// Name implements App.
func (w *WVMApp) Name() string { return w.AppName }

// compiled returns the module's lowered form, compiling at most once.
// InstallWVMApp pre-populates it from the provider's program cache so
// the per-app compile never runs on the request path.
func (w *WVMApp) compiled() (*wvm.Compiled, error) {
	w.compileOnce.Do(func() {
		if w.comp == nil {
			w.comp, w.compileErr = wvm.Compile(w.Prog)
		}
	})
	return w.comp, w.compileErr
}

// Handle implements App by executing the module under the request in a
// pooled VM. A program over its gas or memory budget is killed
// mid-request, the overage is audited, and the request fails with
// ErrAppQuota (a clean 4xx at the gateway) — the charge stays on the
// app's quota ledger.
func (w *WVMApp) Handle(env *AppEnv, req AppRequest) (AppResponse, error) {
	comp, err := w.compiled()
	if err != nil {
		return AppResponse{}, fmt.Errorf("module fault: %w", err)
	}
	gas := w.Gas
	if gas == 0 {
		gas = 1_000_000
	}

	h := wvmHostPool.Get().(*wvmHost)
	h.env, h.req = env, &req

	vm := wvmVMPool.Get().(*wvm.VM)
	vm.Reset(comp, wvm.Config{
		Gas:      gas,
		MemSize:  w.MemSize,
		Syscalls: appSyscalls,
		Account:  env.proc.Account(),
	})
	vm.Host = h

	status, runErr := vm.Run()
	steps := vm.Steps()
	vm.Host = nil
	wvmVMPool.Put(vm)

	if runErr != nil {
		putHost(h)
		if errors.Is(runErr, wvm.ErrGas) || errors.Is(runErr, wvm.ErrMemQuota) {
			env.p.Log.Appendf(audit.KindQuota, "app:"+w.AppName, "viewer:"+req.Viewer,
				"wvm program killed mid-request: %v (gas=%d steps=%d)", runErr, gas, steps)
			return AppResponse{}, fmt.Errorf("%w: %v", ErrAppQuota, runErr)
		}
		return AppResponse{}, fmt.Errorf("module fault: %w", runErr)
	}

	// The body buffer is pooled; the response needs its own copy.
	body := make([]byte, len(h.body))
	copy(body, h.body)
	ct := ""
	if h.ct == 1 {
		ct = "text/plain; charset=utf-8"
	}
	putHost(h)

	if status == 0 {
		status = 200
	}
	return AppResponse{Status: int(status), ContentType: ct, Body: body}, nil
}

// InstallWVMApp registers an uploaded module (by registry name/version)
// as a runnable application. The compiled form comes from the
// provider's bounded content-addressed program cache, so any number of
// installs (or republished versions) of the same bytecode share one
// compilation.
func (p *Provider) InstallWVMApp(module, version string) error {
	return p.InstallWVMAppLimits(module, version, 0, 0)
}

// InstallWVMAppLimits is InstallWVMApp with explicit per-request gas
// and guest-memory budgets (0 means the defaults: 1M instructions,
// 64 KiB).
func (p *Provider) InstallWVMAppLimits(module, version string, gas uint64, memSize int) error {
	v, err := p.Registry.Get(module, version)
	if err != nil {
		return err
	}
	comp, err := p.Programs.Get(v.Hash, v.Program)
	if err != nil {
		return err
	}
	app := &WVMApp{AppName: module, Prog: comp.Program(), Gas: gas, MemSize: memSize, comp: comp}
	app.compileOnce.Do(func() {}) // comp is pre-populated
	p.InstallApp(app)
	return nil
}
