package gateway

import (
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"w5/internal/core"
	"w5/internal/difc"
)

// profileApp serves the owner's profile file; used to drive the
// perimeter from HTTP level.
type profileApp struct{}

func (profileApp) Name() string { return "profile" }
func (profileApp) Handle(env *core.AppEnv, req core.AppRequest) (core.AppResponse, error) {
	data, err := env.ReadFile("/home/" + req.Owner + "/social/profile")
	if err != nil {
		return core.AppResponse{Status: 404, Body: []byte("no profile")}, nil
	}
	return core.AppResponse{Body: []byte("<html><body>" + string(data) + "</body></html>")}, nil
}

// scriptApp returns HTML with an embedded script, for filter tests.
type scriptApp struct{}

func (scriptApp) Name() string { return "scripty" }
func (scriptApp) Handle(env *core.AppEnv, req core.AppRequest) (core.AppResponse, error) {
	return core.AppResponse{
		Body: []byte(`<p>hi</p><script>steal(document.cookie)</script><a onclick="x()">l</a>`),
	}, nil
}

type testClient struct {
	t      *testing.T
	c      *http.Client
	server *httptest.Server
}

func newTestSetup(t *testing.T, opts Options) (*core.Provider, *testClient) {
	t.Helper()
	p := core.NewProvider(core.Config{Name: "gwtest", Enforce: true})
	p.InstallApp(profileApp{})
	p.InstallApp(scriptApp{})
	g := New(p, opts)
	srv := httptest.NewServer(g)
	t.Cleanup(srv.Close)
	jar, _ := cookiejar.New(nil)
	return p, &testClient{t: t, c: &http.Client{Jar: jar}, server: srv}
}

func (tc *testClient) post(path string, form url.Values) (int, string) {
	tc.t.Helper()
	resp, err := tc.c.PostForm(tc.server.URL+path, form)
	if err != nil {
		tc.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func (tc *testClient) get(path string) (int, string) {
	tc.t.Helper()
	resp, err := tc.c.Get(tc.server.URL + path)
	if err != nil {
		tc.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// anon returns a cookie-less client against the same server.
func (tc *testClient) anon() *testClient {
	jar, _ := cookiejar.New(nil)
	return &testClient{t: tc.t, c: &http.Client{Jar: jar}, server: tc.server}
}

func signup(tc *testClient, user, pass string) {
	code, _ := tc.post("/signup", url.Values{"user": {user}, "password": {pass}})
	if code != 200 {
		tc.t.Fatalf("signup %s: status %d", user, code)
	}
}

func writeProfile(t *testing.T, p *core.Provider, user, content string) {
	t.Helper()
	u, err := p.GetUser(user)
	if err != nil {
		t.Fatal(err)
	}
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
	if err := p.FS.Write(p.UserCred(user), "/home/"+user+"/social/profile", []byte(content), label); err != nil {
		t.Fatal(err)
	}
}

func TestSignupLoginWhoami(t *testing.T) {
	_, tc := newTestSetup(t, Options{FilterHTML: true})
	signup(tc, "bob", "hunter2")
	if _, body := tc.get("/whoami"); !strings.Contains(body, "bob") {
		t.Errorf("whoami after signup = %q", body)
	}
	// Logout clears the session.
	tc.post("/logout", nil)
	if _, body := tc.get("/whoami"); !strings.Contains(body, "anonymous") {
		t.Errorf("whoami after logout = %q", body)
	}
	// Login with wrong password fails.
	if code, _ := tc.post("/login", url.Values{"user": {"bob"}, "password": {"nope"}}); code != 401 {
		t.Errorf("bad login status = %d", code)
	}
	// Correct login re-establishes identity.
	if code, _ := tc.post("/login", url.Values{"user": {"bob"}, "password": {"hunter2"}}); code != 200 {
		t.Errorf("login status = %d", code)
	}
	if _, body := tc.get("/whoami"); !strings.Contains(body, "bob") {
		t.Errorf("whoami after login = %q", body)
	}
}

func TestDuplicateSignupConflict(t *testing.T) {
	_, tc := newTestSetup(t, Options{})
	signup(tc, "bob", "pw")
	if code, _ := tc.anon().post("/signup", url.Values{"user": {"bob"}, "password": {"x"}}); code != 409 {
		t.Errorf("duplicate signup status = %d", code)
	}
}

func TestOwnerSeesOwnDataOverHTTP(t *testing.T) {
	p, tc := newTestSetup(t, Options{FilterHTML: true})
	signup(tc, "bob", "pw")
	writeProfile(t, p, "bob", "bob's profile")
	tc.post("/grants/enable", url.Values{"app": {"profile"}})

	code, body := tc.get("/app/profile/?owner=bob")
	if code != 200 || !strings.Contains(body, "bob's profile") {
		t.Errorf("owner fetch = %d %q", code, body)
	}
}

func TestPerimeterBlocksStrangerAndAnonymous(t *testing.T) {
	p, tc := newTestSetup(t, Options{FilterHTML: true})
	signup(tc, "bob", "pw")
	writeProfile(t, p, "bob", "bob's secret profile")
	tc.post("/grants/enable", url.Values{"app": {"profile"}})

	// Charlie (another authenticated user) gets 403.
	charlie := tc.anon()
	signup(charlie, "charlie", "pw")
	code, body := charlie.get("/app/profile/?owner=bob")
	if code != 403 {
		t.Errorf("charlie fetch = %d %q", code, body)
	}
	if strings.Contains(body, "secret") {
		t.Errorf("leak to charlie: %q", body)
	}
	// Anonymous gets 403 too.
	code, body = tc.anon().get("/app/profile/?owner=bob")
	if code != 403 || strings.Contains(body, "secret") {
		t.Errorf("anonymous fetch = %d %q", code, body)
	}
}

func TestFriendDeclassifierOverHTTP(t *testing.T) {
	// Bob configures the friend-list policy via the Web form; Alice can
	// then view his profile, Charlie cannot. (§3.1 end to end over HTTP.)
	p, tc := newTestSetup(t, Options{FilterHTML: true})
	signup(tc, "bob", "pw")
	writeProfile(t, p, "bob", "bob's profile for friends")
	u, _ := p.GetUser("bob")
	label := difc.LabelPair{Secrecy: difc.NewLabel(u.SecrecyTag), Integrity: difc.NewLabel(u.WriteTag)}
	p.FS.Write(p.UserCred("bob"), "/home/bob/social/friends", []byte("alice\n"), label)

	tc.post("/grants/enable", url.Values{"app": {"profile"}})
	if code, body := tc.post("/grants/declass", url.Values{"policy": {"friend-list"}}); code != 200 {
		t.Fatalf("declass authorize = %d %q", code, body)
	}

	alice := tc.anon()
	signup(alice, "alice", "pw")
	code, body := alice.get("/app/profile/?owner=bob")
	if code != 200 || !strings.Contains(body, "bob's profile") {
		t.Errorf("alice fetch = %d %q", code, body)
	}

	charlie := tc.anon()
	signup(charlie, "charlie", "pw")
	if code, _ := charlie.get("/app/profile/?owner=bob"); code != 403 {
		t.Errorf("charlie fetch = %d", code)
	}
}

func TestJavaScriptFilteredAtPerimeter(t *testing.T) {
	_, tc := newTestSetup(t, Options{FilterHTML: true})
	signup(tc, "bob", "pw")
	code, body := tc.get("/app/scripty/")
	if code != 200 {
		t.Fatalf("scripty = %d", code)
	}
	if strings.Contains(body, "steal") || strings.Contains(body, "onclick") {
		t.Errorf("scripts crossed the perimeter: %q", body)
	}
	if !strings.Contains(body, "<p>hi</p>") {
		t.Errorf("content damaged: %q", body)
	}
}

func TestFilterDisabledPassesScripts(t *testing.T) {
	_, tc := newTestSetup(t, Options{FilterHTML: false})
	signup(tc, "bob", "pw")
	_, body := tc.get("/app/scripty/")
	if !strings.Contains(body, "steal") {
		t.Errorf("unexpected filtering: %q", body)
	}
}

func TestForgedCookieRejected(t *testing.T) {
	p, tc := newTestSetup(t, Options{FilterHTML: true})
	signup(tc, "bob", "pw")
	writeProfile(t, p, "bob", "secret")
	tc.post("/grants/enable", url.Values{"app": {"profile"}})

	req, _ := http.NewRequest("GET", tc.server.URL+"/app/profile/?owner=bob", nil)
	req.AddCookie(&http.Cookie{Name: SessionCookie, Value: "forged0123456789"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 403 || strings.Contains(string(b), "secret") {
		t.Errorf("forged cookie: %d %q", resp.StatusCode, b)
	}
}

func TestSessionExpiry(t *testing.T) {
	p, tc := newTestSetup(t, Options{})
	_ = p
	now := time.Now()
	// Reach in via the handler: re-create gateway with a fake clock.
	g := New(p, Options{})
	g.SetClock(func() time.Time { return now })
	srv := httptest.NewServer(g)
	defer srv.Close()
	jar, _ := cookiejar.New(nil)
	c := &testClient{t: t, c: &http.Client{Jar: jar}, server: srv}
	signup(c, "eve", "pw")
	if _, body := c.get("/whoami"); !strings.Contains(body, "eve") {
		t.Fatalf("whoami = %q", body)
	}
	now = now.Add(25 * time.Hour)
	if _, body := c.get("/whoami"); !strings.Contains(body, "anonymous") {
		t.Errorf("session survived expiry: %q", body)
	}
	_ = tc
}

func TestGrantsRequireAuth(t *testing.T) {
	_, tc := newTestSetup(t, Options{})
	anon := tc.anon()
	for _, path := range []string{"/grants/enable", "/grants/write", "/grants/declass"} {
		if code, _ := anon.post(path, url.Values{"app": {"x"}, "policy": {"public"}}); code != 401 {
			t.Errorf("%s anonymous status = %d, want 401", path, code)
		}
	}
}

func TestUnknownAppAndPolicy(t *testing.T) {
	_, tc := newTestSetup(t, Options{})
	signup(tc, "bob", "pw")
	if code, _ := tc.get("/app/ghost/"); code != 404 {
		t.Errorf("unknown app = %d", code)
	}
	if code, _ := tc.post("/grants/declass", url.Values{"policy": {"wormhole"}}); code != 400 {
		t.Errorf("unknown policy = %d", code)
	}
}

func TestRateLimiting(t *testing.T) {
	_, tc := newTestSetup(t, Options{RequestRate: 0.0001, RequestBurst: 3})
	signup(tc, "bob", "pw")
	ok, limited := 0, 0
	for i := 0; i < 10; i++ {
		code, _ := tc.get("/app/scripty/")
		switch code {
		case 200:
			ok++
		case 429:
			limited++
		}
	}
	if ok != 3 || limited != 7 {
		t.Errorf("rate limit: ok=%d limited=%d, want 3/7", ok, limited)
	}
}

func TestIndexAndSearch(t *testing.T) {
	_, tc := newTestSetup(t, Options{})
	_, body := tc.get("/")
	if !strings.Contains(body, "/app/profile/") || !strings.Contains(body, "/app/scripty/") {
		t.Errorf("index = %q", body)
	}
	if code, _ := tc.get("/registry/search?q=anything"); code != 200 {
		t.Errorf("search status = %d", code)
	}
	if code, _ := tc.get("/nonexistent"); code != 404 {
		t.Errorf("bad path = %d", code)
	}
}

func TestAppErrorIsOpaque(t *testing.T) {
	p, tc := newTestSetup(t, Options{})
	p.InstallApp(faultyApp{})
	signup(tc, "bob", "pw")
	code, body := tc.get("/app/faulty/")
	if code != 500 {
		t.Fatalf("faulty app = %d", code)
	}
	if strings.Contains(body, "labels") || strings.Contains(body, "stack") {
		t.Errorf("error leaked internals: %q", body)
	}
}

type faultyApp struct{}

func (faultyApp) Name() string { return "faulty" }
func (faultyApp) Handle(*core.AppEnv, core.AppRequest) (core.AppResponse, error) {
	return core.AppResponse{}, io.ErrUnexpectedEOF
}
