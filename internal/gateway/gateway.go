// Package gateway implements the W5 provider's HTTP front-end and
// security perimeter.
//
// §2 requires that "all of W5 should have DNS and HTTP front-ends so
// that users can interact with a W5 application with today's Web
// clients. When an HTTP request arrives at the provider, the provider
// would read incoming cookies or HTTP data fields to authenticate the
// user; identify the requested application; and launch the application,
// perhaps granting it some privileges over the user's data". That is
// exactly this package's request path:
//
//	cookie -> session -> viewer identity
//	URL    -> /app/<name>/<path> -> Provider.Invoke
//	export -> Provider.ExportCheck (session privilege + declassifiers)
//	HTML   -> htmlsafe.Sanitize (the §3.5 JavaScript filter)
//
// Nothing reaches the response writer except bytes that passed
// ExportCheck — the perimeter is a property of this package's code
// paths, verified by the tests and attacked by internal/attack.
//
// The request path is session-cached: a login mints one immutable
// snapshot of everything authentication would otherwise re-derive per
// request (resolved *core.User with its cached label/credential
// boilerplate, expiry, rate-limiter handle) behind an atomic pointer,
// and keep-alive connections park the session record in a
// per-connection cache so warm requests do no map-level auth work at
// all. Expired logins are evicted by a bounded janitor amortized over
// logins and cold resolutions. See session.go and README.md for the
// snapshot/revocation protocol and the measured HTTP-vs-Invoke
// overhead.
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"w5/internal/audit"
	"w5/internal/core"
	"w5/internal/declass"
	"w5/internal/htmlsafe"
	"w5/internal/quota"
	"w5/internal/rank"
	"w5/internal/registry"
	"w5/internal/wvm"
)

// SessionCookie is the authentication cookie name.
const SessionCookie = "w5sess"

// DefaultSessionTTL bounds how long a login lasts unless Options
// overrides it.
const DefaultSessionTTL = 24 * time.Hour

// Options configures a Gateway.
type Options struct {
	// FilterHTML applies the §3.5 JavaScript filter to text/html
	// responses (default on; disable only for the E9/E10 baselines).
	FilterHTML bool
	// ScriptAllowlist holds audited script hashes passed to htmlsafe.
	ScriptAllowlist map[string]bool
	// SanitizeCacheEntries and SanitizeCacheBytes bound the sanitized-
	// output cache (htmlsafe.Cache): hot public pages pay the filtering
	// pass once per content version. Both must be positive to enable
	// it; zero leaves every request on the direct streaming path.
	SanitizeCacheEntries int
	SanitizeCacheBytes   int64
	// RequestRate and RequestBurst bound per-user request rates; zero
	// disables rate limiting.
	RequestRate  float64
	RequestBurst float64
	// LoginRate and LoginBurst bound per-SOURCE login/signup attempts
	// (tokens/sec and bucket size); zero disables the limiter. Each
	// attempt costs ~0.5 ms of password stretching before it can fail,
	// so without this bound a login flood is a CPU DoS (see
	// loginlimit.go); cmd/w5d enables it by default.
	LoginRate  float64
	LoginBurst float64
	// SessionTTL bounds how long a login lasts (0 = DefaultSessionTTL).
	SessionTTL time.Duration
}

// Gateway serves one provider over HTTP.
type Gateway struct {
	p    *core.Provider
	opts Options
	mux  *http.ServeMux
	ttl  time.Duration

	// clock holds a func() time.Time (injectable for tests).
	clock atomic.Value

	// sessions maps token -> *session. Reads are lock-free; the warm
	// per-connection path (session.go) does not touch it at all.
	sessions sync.Map
	// rates maps user -> *quota.Bucket; sessions cache the handle.
	rates    sync.Map
	anonRate *quota.Bucket
	// loginLimit meters login/signup attempts per source address
	// (loginlimit.go); nil = disabled.
	loginLimit     *loginLimiter
	loginThrottled atomic.Uint64

	// janitor queue (session.go): FIFO of (token, expiry).
	janMu   sync.Mutex
	expiry  []expiryEntry
	janHead int
	// deadQueued counts sessions dropped before their nominal expiry
	// whose queue slots are now tombstones (compaction trigger).
	// Guarded by janMu — dropSession updates it in the same critical
	// section as the map removal, so the rebuild's reset cannot race a
	// concurrent drop into permanent drift.
	deadQueued int

	live         atomic.Int64
	warmHits     atomic.Uint64
	coldResolves atomic.Uint64
	swept        atomic.Uint64

	// fedStats holds the federation health callback (SetFedStats) as a
	// fedStatsFn; nil/unset means federation is not configured.
	fedStats atomic.Value

	// Perimeter filter plumbing, precomputed at New so the data path
	// builds nothing per request: the policy value, its cache
	// fingerprint, the optional sanitized-output cache, and a pool of
	// rewrite buffers for the dirty path.
	sanPolicy htmlsafe.Policy
	sanFP     uint64
	sanCache  *htmlsafe.Cache
	sanBufs   sync.Pool

	// rankIdx serves /registry/search its CodeRank ordering: an
	// immutable ranked view tracking the registry's change sequence,
	// recomputed (warm-started) at most once per catalogue mutation
	// and read lock-free on every search.
	rankIdx *rank.Index
}

// maxPooledSanBuf caps the rewrite buffers the pool retains: one
// multi-megabyte response must not pin its buffer for the gateway's
// lifetime.
const maxPooledSanBuf = 1 << 20

// fedStatsFn is the stored type behind SetFedStats.
type fedStatsFn func() any

// New builds a gateway for the provider.
func New(p *core.Provider, opts Options) *Gateway {
	ttl := opts.SessionTTL
	if ttl <= 0 {
		ttl = DefaultSessionTTL
	}
	g := &Gateway{
		p:       p,
		opts:    opts,
		mux:     http.NewServeMux(),
		ttl:     ttl,
		rankIdx: rank.NewIndex(rank.Options{}),
	}
	g.clock.Store(time.Now)
	g.sanPolicy = htmlsafe.Policy{AllowedHashes: opts.ScriptAllowlist}
	g.sanFP = g.sanPolicy.Fingerprint()
	if opts.FilterHTML && opts.SanitizeCacheEntries > 0 && opts.SanitizeCacheBytes > 0 {
		g.sanCache = htmlsafe.NewCache(opts.SanitizeCacheEntries, opts.SanitizeCacheBytes)
	}
	g.sanBufs.New = func() any {
		b := make([]byte, 0, 4096)
		return &b
	}
	if opts.RequestRate > 0 && opts.RequestBurst > 0 {
		g.anonRate = quota.NewBucket(opts.RequestBurst, opts.RequestRate)
	}
	if opts.LoginRate > 0 && opts.LoginBurst > 0 {
		g.loginLimit = newLoginLimiter(opts.LoginRate, opts.LoginBurst)
	}
	g.mux.HandleFunc("/signup", g.handleSignup)
	g.mux.HandleFunc("/login", g.handleLogin)
	g.mux.HandleFunc("/logout", g.handleLogout)
	g.mux.HandleFunc("/whoami", g.handleWhoami)
	g.mux.HandleFunc("/audit", g.handleAudit)
	g.mux.HandleFunc("/app/", g.handleApp)
	g.mux.HandleFunc("/grants/enable", g.handleEnable)
	g.mux.HandleFunc("/grants/write", g.handleWriteGrant)
	g.mux.HandleFunc("/grants/declass", g.handleDeclass)
	g.mux.HandleFunc("/registry/search", g.handleSearch)
	g.mux.HandleFunc("/registry/publish", g.handlePublish)
	g.mux.HandleFunc("/registry/fork", g.handleFork)
	g.mux.HandleFunc("/registry/endorse", g.handleEndorse)
	g.mux.HandleFunc("/registry/pin", g.handlePin)
	g.mux.HandleFunc("/fed/status", g.handleFedStatus)
	g.mux.HandleFunc("/", g.handleIndex)
	return g
}

// SetClock injects a time source for tests.
func (g *Gateway) SetClock(clock func() time.Time) {
	g.clock.Store(clock)
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// Mux exposes the underlying mux so sibling packages (federation) can
// mount additional trusted endpoints.
func (g *Gateway) Mux() *http.ServeMux { return g.mux }

// SetFedStats installs the callback behind /fed/status — typically
// federation.Syncer.Stats wrapped by cmd/w5d. A callback (rather than
// a direct dependency) keeps gateway importable from federation's side
// of the graph. Pass nil to uninstall.
func (g *Gateway) SetFedStats(fn func() any) {
	g.fedStats.Store(fedStatsFn(fn))
}

// handleFedStatus reports per-peer federation sync health as JSON.
// Authenticated: peer liveness and staleness is operational state any
// local user may see (their own data's freshness), but not the
// anonymous internet.
func (g *Gateway) handleFedStatus(w http.ResponseWriter, r *http.Request) {
	st := g.session(r)
	if st == nil {
		http.Error(w, "login required", http.StatusUnauthorized)
		return
	}
	if !g.allowSession(st) {
		http.Error(w, "rate limited", http.StatusTooManyRequests)
		return
	}
	var fn fedStatsFn
	if v := g.fedStats.Load(); v != nil {
		fn, _ = v.(fedStatsFn)
	}
	if fn == nil {
		http.Error(w, "federation not configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(fn())
}

func (g *Gateway) handleSignup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if !g.allowLogin(r.RemoteAddr) {
		http.Error(w, "too many attempts", http.StatusTooManyRequests)
		return
	}
	user, pass := r.FormValue("user"), r.FormValue("password")
	if user == "" || pass == "" {
		http.Error(w, "user and password required", http.StatusBadRequest)
		return
	}
	if _, err := g.p.CreateUser(user, pass); err != nil {
		if errors.Is(err, core.ErrUserExists) {
			http.Error(w, "user exists", http.StatusConflict)
			return
		}
		http.Error(w, "signup failed", http.StatusBadRequest)
		return
	}
	if err := g.startSession(w, user); err != nil {
		http.Error(w, "session setup failed", http.StatusInternalServerError)
		return
	}
	fmt.Fprintf(w, "welcome, %s\n", user)
}

func (g *Gateway) handleLogin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	// Charge the attempt BEFORE the KDF: refusing must stay ~free while
	// the work being defended costs ~0.5 ms.
	if !g.allowLogin(r.RemoteAddr) {
		http.Error(w, "too many attempts", http.StatusTooManyRequests)
		return
	}
	user, pass := r.FormValue("user"), r.FormValue("password")
	if !g.p.Authenticate(user, pass) {
		http.Error(w, "authentication failed", http.StatusUnauthorized)
		return
	}
	if err := g.startSession(w, user); err != nil {
		http.Error(w, "session setup failed", http.StatusInternalServerError)
		return
	}
	fmt.Fprintf(w, "hello, %s\n", user)
}

func (g *Gateway) handleLogout(w http.ResponseWriter, r *http.Request) {
	if c, err := r.Cookie(SessionCookie); err == nil {
		if v, ok := g.sessions.Load(c.Value); ok {
			// Revoking the state is what invalidates per-connection
			// caches (theirs and ours) — the map delete alone would not.
			g.dropSession(c.Value, v.(*session))
		}
	}
	http.SetCookie(w, &http.Cookie{Name: SessionCookie, Value: "", Path: "/", MaxAge: -1})
	fmt.Fprintln(w, "bye")
}

func (g *Gateway) handleWhoami(w http.ResponseWriter, r *http.Request) {
	v := g.viewer(r)
	if v == "" {
		fmt.Fprintln(w, "(anonymous)")
		return
	}
	fmt.Fprintln(w, v)
}

// handleAudit is the log-inspection endpoint behind `w5ctl audit`: the
// provider's trusted audit trail, filtered to the events that concern
// the authenticated viewer (their actions, their data, their grants).
// The query reads transparently across the audit log's storage tiers —
// active segment, in-memory ring, and on-disk spill — via the merged
// iterator; this handler neither knows nor cares where an event lives.
// Parameters: kind=<event kind>, since=<seq> (exclusive), limit=<n>.
func (g *Gateway) handleAudit(w http.ResponseWriter, r *http.Request) {
	st := g.session(r)
	if st == nil {
		http.Error(w, "login required", http.StatusUnauthorized)
		return
	}
	// A no-since query walks history back to the oldest retained
	// segment — disk reads included — so it spends the same per-user
	// request budget as the app data path.
	if !g.allowSession(st) {
		http.Error(w, "rate limited", http.StatusTooManyRequests)
		return
	}
	user := st.user.Name
	kind := audit.Kind(r.FormValue("kind"))
	var since uint64
	if v := r.FormValue("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since", http.StatusBadRequest)
			return
		}
		since = n
	}
	limit := 100
	if v := r.FormValue("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > 10000 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	from := since + 1
	if from == 0 {
		return // since == MaxUint64: nothing can follow it
	}
	n := 0
	show := func(e audit.Event) bool {
		if !auditConcerns(e, user) {
			return true
		}
		fmt.Fprintln(w, e.String())
		n++
		return n < limit
	}
	var err error
	if kind != "" {
		// Filtered below the rendering layer: non-matching events cost
		// no deferred Sprintf on any tier.
		err = g.p.Log.EventsByKind(kind, from, show)
	} else {
		err = g.p.Log.Events(from, show)
	}
	if err != nil {
		// Partial output may already be on the wire, so the status
		// cannot change; an audit trail must never LOOK complete when
		// it is not, so say what is missing.
		fmt.Fprintf(w, "! warning: part of the spilled history was unreadable: %v\n", err)
	}
}

// auditConcerns reports whether the viewer may see an event: the trail
// each user inspects is their own slice of the platform's history, not
// a cross-user surveillance feed. Actor and subject strings follow the
// platform's conventions (bare user name, "user:<name>" credential
// principals, "viewer:<name>" export destinations, home-tree paths).
// The string matching is sound only because core.CreateUser rejects
// names containing ':' or '/' and the reserved system actors
// ("provider", "gateway", ...) — an account named "gateway" would
// otherwise read every sanitizer event verbatim.
func auditConcerns(e audit.Event, user string) bool {
	return e.Actor == user || e.Subject == user ||
		e.Actor == "user:"+user || e.Subject == "viewer:"+user ||
		strings.HasPrefix(e.Subject, "/home/"+user+"/")
}

// handleApp is the perimeter's data path: /app/<name>/<subpath>.
func (g *Gateway) handleApp(w http.ResponseWriter, r *http.Request) {
	st := g.session(r)
	viewer := ""
	if st != nil {
		viewer = st.user.Name
	}
	if !g.allowSession(st) {
		http.Error(w, "rate limited", http.StatusTooManyRequests)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/app/")
	name, sub, _ := strings.Cut(rest, "/")
	if name == "" {
		http.Error(w, "no application named", http.StatusNotFound)
		return
	}
	// Paramless GETs (the hot read path) skip form parsing and the
	// params map entirely; owner-only requests still pass a nil map.
	var params map[string]string
	owner := ""
	if r.URL.RawQuery != "" || r.Method != http.MethodGet {
		if err := r.ParseForm(); err != nil {
			http.Error(w, "bad form", http.StatusBadRequest)
			return
		}
		for k, vs := range r.Form {
			if len(vs) == 0 {
				continue
			}
			if k == "owner" {
				owner = vs[0]
				continue
			}
			if params == nil {
				params = make(map[string]string, len(r.Form))
			}
			params[k] = vs[0]
		}
	}

	inv, err := g.p.Invoke(name, core.AppRequest{
		Viewer: viewer,
		Owner:  owner,
		Path:   "/" + sub,
		Method: r.Method,
		Params: params,
	})
	if err != nil {
		switch {
		case errors.Is(err, core.ErrNoApp):
			http.Error(w, "no such application", http.StatusNotFound)
		case errors.Is(err, core.ErrAppQuota):
			// A WVM program killed at its gas/memory budget: the
			// platform is healthy and the charge is on the app's
			// ledger, so answer 429 rather than the generic 500.
			http.Error(w, "application exceeded its resource budget", http.StatusTooManyRequests)
		default:
			// App faults reveal nothing beyond their occurrence
			// (§3.5 "Debugging": no core dumps across the perimeter).
			http.Error(w, "application error", http.StatusInternalServerError)
		}
		return
	}
	var body []byte
	if st != nil {
		// Warm path: the session snapshot already holds the resolved
		// *User, so the export does no user-map lookup either.
		body, err = g.p.ExportCheckFor(inv, st.user)
	} else {
		body, err = g.p.ExportCheck(inv, "")
	}
	if err != nil {
		http.Error(w, "access denied by data policy", http.StatusForbidden)
		return
	}
	ct := inv.Response.ContentType
	if g.opts.FilterHTML && strings.HasPrefix(ct, "text/html") {
		// The streaming filter writes into a pooled buffer; its clean
		// fast path returns body itself and touches the buffer not at
		// all. With the output cache enabled, hot pages skip even the
		// pass: one SHA-256 plus a map lookup.
		bp := g.sanBufs.Get().(*[]byte)
		buf := (*bp)[:0]
		var (
			clean []byte
			rep   htmlsafe.Report
			hit   bool
		)
		if g.sanCache != nil {
			clean, rep, hit = g.sanCache.Sanitize(buf, body, g.sanPolicy, g.sanFP)
		} else {
			clean, rep = htmlsafe.SanitizeBytes(buf, body, g.sanPolicy)
		}
		if !rep.Clean() {
			// Audited per request — a cache hit for a dirty page still
			// records that filtered bytes crossed the perimeter.
			g.p.Log.Appendf(audit.KindExport, "gateway", name,
				"sanitized: %d scripts, %d attrs, %d urls, %d elements",
				rep.ScriptsRemoved, rep.AttrsRemoved, rep.URLsNeutralized, rep.ElementsRemoved)
		}
		writeResponse(w, ct, inv.Response.Status, clean)
		// Recycle after the write: clean may be rooted in the pooled
		// buffer. Adopt a reallocated rewrite buffer, but never bytes
		// we do not own (the input body, a shared cache entry).
		if !hit && len(clean) > 0 && &clean[0] != &body[0] {
			*bp = clean[:0]
		}
		if cap(*bp) <= maxPooledSanBuf {
			g.sanBufs.Put(bp)
		}
		return
	}
	writeResponse(w, ct, inv.Response.Status, body)
}

// ctSlices pre-boxes hot Content-Type values so the warm path's
// header set is a map assignment of a shared slice, not a per-request
// []string allocation. net/http only reads header values, never
// mutates them.
var ctSlices = map[string][]string{
	"text/html; charset=utf-8":  {"text/html; charset=utf-8"},
	"text/plain; charset=utf-8": {"text/plain; charset=utf-8"},
	"application/json":          {"application/json"},
}

// writeResponse is the single exit point for app bodies: content type,
// status, bytes. A 200 rides the implicit WriteHeader in Write.
func writeResponse(w http.ResponseWriter, ct string, status int, body []byte) {
	h := w.Header()
	if v, ok := ctSlices[ct]; ok {
		h["Content-Type"] = v
	} else {
		h.Set("Content-Type", ct)
	}
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	w.Write(body)
}

// requireAuth returns the viewer or writes a 401.
func (g *Gateway) requireAuth(w http.ResponseWriter, r *http.Request) (string, bool) {
	v := g.viewer(r)
	if v == "" {
		http.Error(w, "login required", http.StatusUnauthorized)
		return "", false
	}
	return v, true
}

func (g *Gateway) handleEnable(w http.ResponseWriter, r *http.Request) {
	user, ok := g.requireAuth(w, r)
	if !ok {
		return
	}
	app := r.FormValue("app")
	if app == "" {
		http.Error(w, "app required", http.StatusBadRequest)
		return
	}
	if r.FormValue("revoke") == "1" {
		g.p.DisableApp(user, app)
		fmt.Fprintf(w, "disabled %s\n", app)
		return
	}
	// Marketplace adoption: enabling a published-but-not-yet-installed
	// module installs its audited bytecode from the registry first, so
	// "publish → discover → enable" needs no operator step.
	if !g.p.AppInstalled(app) {
		if _, err := g.p.Registry.Get(app, ""); err == nil {
			if err := g.p.InstallWVMApp(app, ""); err != nil {
				http.Error(w, "install failed", http.StatusBadRequest)
				return
			}
		}
	}
	// The paper's one-checkbox adoption.
	if err := g.p.EnableApp(user, app); err != nil {
		http.Error(w, "enable failed", http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "enabled %s\n", app)
}

func (g *Gateway) handleWriteGrant(w http.ResponseWriter, r *http.Request) {
	user, ok := g.requireAuth(w, r)
	if !ok {
		return
	}
	app := r.FormValue("app")
	if app == "" {
		http.Error(w, "app required", http.StatusBadRequest)
		return
	}
	if r.FormValue("revoke") == "1" {
		g.p.RevokeWrite(user, app)
		fmt.Fprintf(w, "write revoked for %s\n", app)
		return
	}
	if err := g.p.GrantWrite(user, app); err != nil {
		http.Error(w, "grant failed", http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "write granted to %s\n", app)
}

// handleDeclass lets a user authorize one of the stock declassifiers —
// the Web-form policy configuration of §2 ("providers would allow users
// to configure their policies via front-ends like Web forms").
func (g *Gateway) handleDeclass(w http.ResponseWriter, r *http.Request) {
	user, ok := g.requireAuth(w, r)
	if !ok {
		return
	}
	if r.FormValue("revoke") != "" {
		g.p.Declass.Revoke(user, r.FormValue("revoke"))
		fmt.Fprintf(w, "revoked %s\n", r.FormValue("revoke"))
		return
	}
	var policy declass.Policy
	switch kind := r.FormValue("policy"); kind {
	case "owner-only":
		policy = declass.OwnerOnly{}
	case "public":
		policy = declass.Public{}
	case "friend-list":
		policy = declass.FriendList{FriendsPath: r.FormValue("friends_path")}
	case "group":
		policy = declass.Group{
			GroupName: r.FormValue("group"),
			Members:   splitNonEmpty(r.FormValue("members")),
		}
	case "chameleon-friends":
		policy = declass.Chameleon{
			Inner:   declass.FriendList{},
			Trusted: splitNonEmpty(r.FormValue("trusted")),
		}
	default:
		http.Error(w, "unknown policy "+kind, http.StatusBadRequest)
		return
	}
	if err := g.p.AuthorizeDeclassifier(user, policy); err != nil {
		http.Error(w, "authorization failed", http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "authorized %s\n", policy.Name())
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// handleSearch is the user-facing "code search" (§3.2): keyword filter
// over one immutable registry snapshot, ordered by the cached CodeRank
// view (endorsement-personalized). The whole read is lock-free: one
// atomic load for the catalogue, one for the ranked view.
func (g *Gateway) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.FormValue("q")
	rv := g.p.Registry.View()
	ranked := g.rankIdx.View(g.p.Registry)
	matches := rv.Search(q)
	sort.SliceStable(matches, func(i, j int) bool {
		si, sj := ranked.Scores[matches[i].Module], ranked.Scores[matches[j].Module]
		if si != sj {
			return si > sj
		}
		return matches[i].Module < matches[j].Module
	})
	for _, v := range matches {
		openness := "closed-source"
		if v.OpenSource {
			openness = "open-source"
		}
		fork := ""
		if v.ForkOf != "" {
			fork = " fork-of=" + v.ForkOf
		}
		fmt.Fprintf(w, "%s@%s by %s [%s] %s — %s endorsements=%d rank=%.6f%s\n",
			v.Module, v.Version, v.Developer, v.Kind, openness, v.Summary,
			rv.EndorsementCount(v.Module), ranked.Scores[v.Module], fork)
	}
}

// maxPublishBody bounds a /registry/publish request. The handler (and
// the registry's reproducibility check) assembles the submitted source,
// so an unbounded body would be a cheap CPU/memory exhaustion surface
// for any authenticated user.
const maxPublishBody = 1 << 20 // 1 MiB

// handlePublish is the developer upload path (§2): the authenticated
// user submits an open-source listing, the gateway assembles it against
// the platform syscall table, and the registry's reproducibility check
// guarantees the published bytecode is exactly the audited source.
// Ownership is the registry's: only a module's first publisher may add
// versions; anyone else must fork.
func (g *Gateway) handlePublish(w http.ResponseWriter, r *http.Request) {
	user, ok := g.requireAuth(w, r)
	if !ok {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxPublishBody)
	if err := r.ParseForm(); err != nil {
		http.Error(w, "publish request too large", http.StatusRequestEntityTooLarge)
		return
	}
	moduleName, version := r.FormValue("module"), r.FormValue("version")
	source := r.FormValue("source")
	if moduleName == "" || version == "" || source == "" {
		http.Error(w, "module, version and source required", http.StatusBadRequest)
		return
	}
	deps := splitNonEmpty(r.FormValue("deps"))
	if len(deps) > registry.MaxDeps {
		http.Error(w, "too many deps", http.StatusBadRequest)
		return
	}
	kind := registry.Kind(r.FormValue("kind"))
	if kind == "" {
		kind = registry.KindApp
	}
	prog, err := wvm.Assemble(source, core.AppSyscallNames)
	if err != nil {
		http.Error(w, "source does not assemble", http.StatusBadRequest)
		return
	}
	v, err := g.p.Registry.Put(registry.Upload{
		Module:    moduleName,
		Version:   version,
		Developer: user,
		Kind:      kind,
		Program:   prog,
		Source:    source,
		SysNames:  core.AppSyscallNames,
		Deps:      deps,
		Summary:   r.FormValue("summary"),
	})
	switch {
	case errors.Is(err, registry.ErrNotOwner):
		http.Error(w, "module is owned by another developer; fork it instead", http.StatusForbidden)
		return
	case errors.Is(err, registry.ErrExists):
		http.Error(w, "version already exists", http.StatusConflict)
		return
	case err != nil:
		http.Error(w, "publish refused", http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "published %s@%s hash=%s\n", v.Module, v.Version, v.Hash[:12])
}

// handleFork implements §2's "any developer … can customize an existing
// application by simply 'forking' the existing code".
func (g *Gateway) handleFork(w http.ResponseWriter, r *http.Request) {
	user, ok := g.requireAuth(w, r)
	if !ok {
		return
	}
	src, newMod, newVer := r.FormValue("module"), r.FormValue("newmodule"), r.FormValue("newversion")
	if src == "" || newMod == "" || newVer == "" {
		http.Error(w, "module, newmodule and newversion required", http.StatusBadRequest)
		return
	}
	v, err := g.p.Registry.Fork(user, src, r.FormValue("version"), newMod, newVer)
	switch {
	case errors.Is(err, registry.ErrClosedSource):
		http.Error(w, "module is closed-source", http.StatusForbidden)
		return
	case errors.Is(err, registry.ErrNotFound):
		http.Error(w, "no such module", http.StatusNotFound)
		return
	case errors.Is(err, registry.ErrExists):
		http.Error(w, "version already exists", http.StatusConflict)
		return
	case err != nil:
		http.Error(w, "fork refused", http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "forked %s into %s@%s\n", v.ForkOf, v.Module, v.Version)
}

// handleEndorse records a §3.2 editor endorsement, which feeds the
// CodeRank personalization vector.
func (g *Gateway) handleEndorse(w http.ResponseWriter, r *http.Request) {
	user, ok := g.requireAuth(w, r)
	if !ok {
		return
	}
	moduleName := r.FormValue("module")
	if moduleName == "" {
		http.Error(w, "module required", http.StatusBadRequest)
		return
	}
	if err := g.p.Registry.Endorse(user, moduleName); err != nil {
		http.Error(w, "no such module", http.StatusNotFound)
		return
	}
	fmt.Fprintf(w, "endorsed %s\n", moduleName)
}

// handlePin lets a module's owner pin which version "latest" resolves
// to — §2's "version X.Y of that Web application, not the latest
// version". Pin rights are anchored to the module's owner (its first
// publisher, a property of the module, not of any version), and
// PinBy checks ownership inside the same registry mutation that applies
// the pin, so there is no check-then-act window.
func (g *Gateway) handlePin(w http.ResponseWriter, r *http.Request) {
	user, ok := g.requireAuth(w, r)
	if !ok {
		return
	}
	moduleName, version := r.FormValue("module"), r.FormValue("version")
	if moduleName == "" {
		http.Error(w, "module required", http.StatusBadRequest)
		return
	}
	switch err := g.p.Registry.PinBy(user, moduleName, version); {
	case errors.Is(err, registry.ErrNotOwner):
		http.Error(w, "only the module owner may pin", http.StatusForbidden)
		return
	case err != nil:
		http.Error(w, "no such module or version", http.StatusNotFound)
		return
	}
	if version == "" {
		fmt.Fprintf(w, "pin cleared for %s\n", moduleName)
	} else {
		fmt.Fprintf(w, "pinned %s@%s\n", moduleName, version)
	}
}

func (g *Gateway) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, "W5 provider %q\napps:\n", g.p.Name)
	for _, a := range g.p.AppNames() {
		fmt.Fprintf(w, "  /app/%s/\n", a)
	}
}
