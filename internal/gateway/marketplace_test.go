package gateway

import (
	"net/http"
	"net/url"
	"strings"
	"testing"

	"w5/internal/core"
	"w5/internal/difc"
	"w5/internal/registry"
)

// writeUserFile writes an owner-labeled file into the user's home, the
// way the social app would.
func writeUserFile(t *testing.T, p *core.Provider, user, rel string, data []byte) {
	t.Helper()
	u, err := p.GetUser(user)
	if err != nil {
		t.Fatalf("get user %s: %v", user, err)
	}
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
	if err := p.FS.Write(p.UserCred(user), "/home/"+user+rel, data, label); err != nil {
		t.Fatalf("write %s%s: %v", user, rel, err)
	}
}

// notesSrc is a minimal marketplace app: it reads the owner's profile
// file (tainting the process with s_owner) and emits it as text, so a
// cross-user read exercises the declassifier gate end to end.
const notesSrc = `; notes — marketplace demo: emit the owner's profile (tainted read).
.data d_home "/home/"
.data d_suf  "/social/profile"
.data t_none "no note"

start:
    push 0x1000
    sys copy_owner
    store 1
    load 1
    jnz go
    push 1
    sys content_type
    pop
    push @t_none
    push #t_none
    sys emit
    pop
    push 400
    halt
go:
    push 0x1900
    store 15
    push @d_home
    store 16
    push #d_home
    store 17
    call memcpy
    push 0x1906
    store 15
    push 0x1000
    store 16
    load 1
    store 17
    call memcpy
    push 0x1906
    load 1
    add
    store 15
    push @d_suf
    store 16
    push #d_suf
    store 17
    call memcpy
    push 1
    sys content_type
    pop
    push 0x1900
    push 6
    load 1
    add
    push #d_suf
    add
    push 0x2000
    push 0x4000
    sys read_file
    dup
    push 0
    lt
    jz emit_note
    pop
    push @t_none
    push #t_none
    sys emit
    pop
    push 404
    halt
emit_note:
    store 3
    push 0x2000
    load 3
    sys emit
    pop
    push 200
    halt

memcpy:
    push 0
    store 18
memcpy_loop:
    load 18
    load 17
    lt
    jz memcpy_done
    load 15
    load 18
    add
    load 16
    load 18
    add
    mload
    mstore
    load 18
    push 1
    add
    store 18
    jmp memcpy_loop
memcpy_done:
    ret
`

// TestMarketplaceLifecycleHTTP walks the paper's §2/§3 marketplace
// story over plain HTTP: a developer publishes an open-source module,
// an editor endorses it, users discover it rank-ordered, enabling it
// installs the audited bytecode, and a cross-user read crosses the
// perimeter only through the owner's declassifier.
func TestMarketplaceLifecycleHTTP(t *testing.T) {
	p, tc := newTestSetup(t, Options{})

	dev := tc
	signup(dev, "eve", "pw")
	// publish: bad source refused, good source accepted, dup refused.
	if code, _ := dev.post("/registry/publish", url.Values{
		"module": {"notes"}, "version": {"1.0"}, "source": {"bogus opcode\n"},
	}); code != 400 {
		t.Fatalf("bogus publish: status %d", code)
	}
	code, body := dev.post("/registry/publish", url.Values{
		"module": {"notes"}, "version": {"1.0"}, "source": {notesSrc},
		"summary": {"owner note viewer"},
	})
	if code != 200 || !strings.Contains(body, "published notes@1.0") {
		t.Fatalf("publish: %d %q", code, body)
	}
	if code, _ := dev.post("/registry/publish", url.Values{
		"module": {"notes"}, "version": {"1.0"}, "source": {notesSrc},
	}); code != 409 {
		t.Fatalf("dup publish: status %d", code)
	}
	// A second, unendorsed module that also matches the query.
	if code, _ := dev.post("/registry/publish", url.Values{
		"module": {"notes-lite"}, "version": {"0.1"}, "source": {notesSrc},
		"summary": {"fork bait"},
	}); code != 200 {
		t.Fatalf("publish notes-lite: status %d", code)
	}

	// fork + pin.
	if code, body := dev.post("/registry/fork", url.Values{
		"module": {"notes"}, "newmodule": {"notes-fork"}, "newversion": {"1.0"},
	}); code != 200 || !strings.Contains(body, "forked notes@1.0") {
		t.Fatalf("fork: %d %q", code, body)
	}
	if code, _ := dev.post("/registry/publish", url.Values{
		"module": {"notes"}, "version": {"2.0"}, "source": {notesSrc},
	}); code != 200 {
		t.Fatalf("publish 2.0: failed")
	}
	if code, body := dev.post("/registry/pin", url.Values{
		"module": {"notes"}, "version": {"1.0"},
	}); code != 200 || !strings.Contains(body, "pinned notes@1.0") {
		t.Fatalf("pin: %d %q", code, body)
	}

	// endorse: an editor boosts "notes"; search comes back rank-ordered.
	editor := tc.anon()
	signup(editor, "edna", "pw")
	if code, _ := editor.post("/registry/endorse", url.Values{"module": {"notes"}}); code != 200 {
		t.Fatalf("endorse failed")
	}
	if code, _ := editor.post("/registry/endorse", url.Values{"module": {"nosuch"}}); code != 404 {
		t.Fatalf("endorse missing module: expected 404")
	}
	_, list := tc.anon().get("/registry/search?q=notes")
	lines := strings.Split(strings.TrimSpace(list), "\n")
	if len(lines) != 3 {
		t.Fatalf("search: expected 3 results, got %q", list)
	}
	if !strings.HasPrefix(lines[0], "notes@1.0 ") {
		t.Fatalf("endorsed+pinned module not ranked first: %q", lines[0])
	}
	if !strings.Contains(lines[0], "endorsements=1") || !strings.Contains(lines[0], "rank=") {
		t.Fatalf("search line missing rank/endorsements: %q", lines[0])
	}

	// enable: alice adopts the module; the gateway installs the audited
	// bytecode from the registry on first enable.
	alice := tc.anon()
	signup(alice, "alice", "pw")
	if p.AppInstalled("notes") {
		t.Fatal("notes installed before any enable")
	}
	if code, body := alice.post("/grants/enable", url.Values{"app": {"notes"}}); code != 200 || !strings.Contains(body, "enabled notes") {
		t.Fatalf("enable: %d %q", code, body)
	}
	if !p.AppInstalled("notes") {
		t.Fatal("enable did not install the published module")
	}

	// Owner data + own read.
	writeUserFile(t, p, "alice", "/social/profile", []byte("alice's marketplace note"))
	if code, body := alice.get("/app/notes/?owner=alice"); code != 200 || body != "alice's marketplace note" {
		t.Fatalf("owner read: %d %q", code, body)
	}

	// Cross-user read: denied without a declassifier, allowed through
	// the friend-list policy once bob is a friend, denied again after
	// an unfriending edit (the epoch invalidation in action over HTTP).
	bob := tc.anon()
	signup(bob, "bob", "pw")
	if code, _ := bob.post("/grants/enable", url.Values{"app": {"notes"}}); code != 200 {
		t.Fatalf("bob enable failed")
	}
	if code, _ := bob.get("/app/notes/?owner=alice"); code != 403 {
		t.Fatalf("cross read without declassifier: status %d, want 403", code)
	}
	if code, _ := alice.post("/grants/declass", url.Values{"policy": {"friend-list"}}); code != 200 {
		t.Fatalf("declass grant failed")
	}
	writeUserFile(t, p, "alice", "/social/friends", []byte("bob\n"))
	for i := 0; i < 3; i++ { // repeated reads exercise the verdict cache
		if code, body := bob.get("/app/notes/?owner=alice"); code != 200 || body != "alice's marketplace note" {
			t.Fatalf("friend read %d: %d %q", i, code, body)
		}
	}
	writeUserFile(t, p, "alice", "/social/friends", []byte("# nobody\n"))
	if code, _ := bob.get("/app/notes/?owner=alice"); code != 403 {
		t.Fatalf("read after unfriending: status %d, want 403", code)
	}
	hits, _, _ := p.Declass.CacheStats()
	if hits == 0 {
		t.Fatal("verdict cache saw no hits across repeated friend reads")
	}
}

// TestPublishOwnershipAndLimits pins the marketplace's anti-hijack and
// resource-bound behavior over HTTP: only a module's first publisher
// may add versions or pin (anyone else gets 403 and must fork), and
// oversized publish requests are refused before any assembly work.
func TestPublishOwnershipAndLimits(t *testing.T) {
	_, tc := newTestSetup(t, Options{})

	dana := tc
	signup(dana, "dana", "pw")
	if code, _ := dana.post("/registry/publish", url.Values{
		"module": {"notes"}, "version": {"1.0"}, "source": {notesSrc},
	}); code != 200 {
		t.Fatalf("publish: status %d", code)
	}

	// A different authenticated developer cannot ship a new "latest"
	// under dana's name and trust signals...
	mallory := tc.anon()
	signup(mallory, "mallory", "pw")
	if code, body := mallory.post("/registry/publish", url.Values{
		"module": {"notes"}, "version": {"2.0"}, "source": {notesSrc},
	}); code != 403 || !strings.Contains(body, "owned by another developer") {
		t.Fatalf("hijack publish: %d %q, want 403", code, body)
	}
	// ...nor repoint "latest" by pinning.
	if code, _ := mallory.post("/registry/pin", url.Values{
		"module": {"notes"}, "version": {"1.0"},
	}); code != 403 {
		t.Fatalf("hijack pin: status %d, want 403", code)
	}
	// Forking stays open to everyone — that is §2's customization path.
	if code, _ := mallory.post("/registry/fork", url.Values{
		"module": {"notes"}, "newmodule": {"notes-m"}, "newversion": {"1.0"},
	}); code != 200 {
		t.Fatalf("fork: status %d", code)
	}

	// The owner is unaffected.
	if code, _ := dana.post("/registry/publish", url.Values{
		"module": {"notes"}, "version": {"2.0"}, "source": {notesSrc},
	}); code != 200 {
		t.Fatalf("owner publish 2.0: status %d", code)
	}
	if code, _ := dana.post("/registry/pin", url.Values{
		"module": {"notes"}, "version": {"1.0"},
	}); code != 200 {
		t.Fatalf("owner pin: status %d", code)
	}
	if code, _ := dana.post("/registry/pin", url.Values{
		"module": {"nosuch"},
	}); code != 404 {
		t.Fatalf("pin missing module: status %d, want 404", code)
	}

	// A publish body past the cap is refused before assembly.
	if code, _ := dana.post("/registry/publish", url.Values{
		"module": {"big"}, "version": {"1.0"},
		"source": {strings.Repeat("; padding\n", 1<<17)}, // ~1.2 MiB
	}); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized publish: status %d, want 413", code)
	}
	// So is a dependency list past the bound.
	deps := strings.TrimSuffix(strings.Repeat("d,", registry.MaxDeps+1), ",")
	if code, body := dana.post("/registry/publish", url.Values{
		"module": {"deps"}, "version": {"1.0"}, "source": {notesSrc}, "deps": {deps},
	}); code != 400 || !strings.Contains(body, "too many deps") {
		t.Fatalf("oversized deps: %d %q, want 400", code, body)
	}
}
