package gateway

// Per-source login rate limiting.
//
// Authenticating a login costs a deliberate ~0.5 ms of password
// stretching (core.hashPassword): fine for humans, but an attacker who
// POSTs /login in a loop rents the provider's CPU at no cost to
// themselves — a KDF-amplified DoS the ROADMAP flagged. The limiter
// charges each login/signup ATTEMPT (before any hashing) against a
// token bucket chosen by the request's source address.
//
// The source address is attacker-controlled, so the bucket table must
// not grow with it: a fixed power-of-two array of buckets indexed by an
// FNV-1a hash of the source host gives O(1) memory forever. Collisions
// make the limit slightly conservative (two hosts sharing a bucket
// share a budget) and are harmless at the default table size: the
// table exists to stop tight loops from one source, not to meter
// well-behaved users, who consume a token a day.

import (
	"net"

	"w5/internal/quota"
)

// loginBuckets is the fixed bucket-table size (power of two).
const loginBuckets = 1024

// globalLoginFactor scales the aggregate budget shared by ALL sources.
// Per-source buckets stop single-source loops, but an attacker who
// rotates source addresses (one IPv6 /64 is plenty) touches a fresh
// bucket each time; the global bucket bounds the total KDF spend no
// matter how many sources participate: 64 × the per-source rate at
// the w5d defaults admits ≤64 hashes/sec ≈ 3% of one core.
const globalLoginFactor = 64

// loginLimiter is the fixed-memory per-source attempt limiter.
type loginLimiter struct {
	buckets [loginBuckets]*quota.Bucket
	global  *quota.Bucket
}

func newLoginLimiter(rate, burst float64) *loginLimiter {
	ll := &loginLimiter{
		global: quota.NewBucket(burst*globalLoginFactor, rate*globalLoginFactor),
	}
	for i := range ll.buckets {
		ll.buckets[i] = quota.NewBucket(burst, rate)
	}
	return ll
}

// allow charges one attempt from remoteAddr's bucket.
func (ll *loginLimiter) allow(remoteAddr string) bool {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		host = remoteAddr
	}
	// Inline FNV-1a over the host string: no allocation on a path whose
	// whole point is refusing work cheaply.
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(host); i++ {
		h ^= uint32(host[i])
		h *= prime32
	}
	// Per-source first, so a single-source loop drains its own bucket
	// and never touches the shared budget well-behaved sources use.
	return ll.buckets[h&(loginBuckets-1)].Take(1) && ll.global.Take(1)
}

// allowLogin gates the KDF-bound handlers (login, signup). Returns true
// when no limiter is configured or the source still has budget.
func (g *Gateway) allowLogin(remoteAddr string) bool {
	if g.loginLimit == nil {
		return true
	}
	if g.loginLimit.allow(remoteAddr) {
		return true
	}
	g.loginThrottled.Add(1)
	return false
}
