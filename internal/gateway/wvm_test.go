package gateway

import (
	"fmt"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"w5/internal/apps"
	"w5/internal/audit"
	"w5/internal/core"
	"w5/internal/quota"
	"w5/internal/wvm"
)

// mustAssembleApp builds a WVM app program against the app ABI.
func mustAssembleApp(t *testing.T, src string) *wvm.Program {
	t.Helper()
	prog, err := wvm.Assemble(src, core.AppSyscallNames)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestWVMGasExhaustionOverHTTP pins the rogue-app story end to end: a
// hostile program that spins forever is killed mid-request at its gas
// limit, the client gets a clean 429 (not a hang, not a 500), the kill
// is audited, and the burned CPU stays billed on the app's ledger.
func TestWVMGasExhaustionOverHTTP(t *testing.T) {
	p := core.NewProvider(core.Config{Name: "gwtest", Enforce: true})
	p.InstallApp(&core.WVMApp{
		AppName: "spinner",
		Prog:    mustAssembleApp(t, "loop: jmp loop\n"),
		Gas:     50_000,
		MemSize: 32 << 10,
	})
	g := New(p, Options{})
	srv := httptest.NewServer(g)
	t.Cleanup(srv.Close)
	jar, _ := cookiejar.New(nil)
	tc := &testClient{t: t, c: &http.Client{Jar: jar}, server: srv}
	signup(tc, "bob", "pw")

	code, body := tc.get("/app/spinner/?owner=bob")
	if code != 429 {
		t.Fatalf("spinner status = %d body=%q, want 429", code, body)
	}
	if !strings.Contains(body, "resource budget") {
		t.Errorf("spinner body = %q, want resource-budget message", body)
	}

	// The overage is audited...
	kills := p.Log.ByKind(audit.KindQuota)
	found := false
	for _, e := range kills {
		if e.Actor == "app:spinner" && strings.Contains(e.Detail, "killed mid-request") {
			found = true
		}
	}
	if !found {
		t.Errorf("no quota-kill audit event for app:spinner; got %v", kills)
	}

	// ...and the ledger shows the bill: every instruction up to the gas
	// limit, plus the guest memory reservation.
	acct := p.Quotas.Account("app:spinner")
	if got := acct.Used(quota.CPU); got != 50_000 {
		t.Errorf("CPU billed = %d, want 50000 (full gas budget)", got)
	}
	if got := acct.Used(quota.Memory); got != 32<<10 {
		t.Errorf("Memory billed = %d, want %d", got, 32<<10)
	}
}

// TestWVMCPUQuotaKillOverHTTP is the other half of gas-to-quota
// billing: the per-app CPU budget (not the per-request gas limit) is
// what runs out, because the chunked charges land on the shared
// account. Same clean 429.
func TestWVMCPUQuotaKillOverHTTP(t *testing.T) {
	limits := quota.DefaultAppLimits()
	limits.CPU = 10_000 // far below the per-request gas limit
	p := core.NewProvider(core.Config{Name: "gwtest", Enforce: true, AppLimits: limits})
	p.InstallApp(&core.WVMApp{
		AppName: "spinner",
		Prog:    mustAssembleApp(t, "loop: jmp loop\n"),
		Gas:     1 << 30,
	})
	g := New(p, Options{})
	srv := httptest.NewServer(g)
	t.Cleanup(srv.Close)
	jar, _ := cookiejar.New(nil)
	tc := &testClient{t: t, c: &http.Client{Jar: jar}, server: srv}
	signup(tc, "bob", "pw")

	code, body := tc.get("/app/spinner/?owner=bob")
	if code != 429 {
		t.Fatalf("spinner status = %d body=%q, want 429", code, body)
	}
	acct := p.Quotas.Account("app:spinner")
	if used := acct.Used(quota.CPU); used == 0 || used > 10_000 {
		t.Errorf("CPU billed = %d, want (0, 10000]", used)
	}
}

// TestWVMTwinConcurrentInvokes hammers one gateway with concurrent
// requests from several users through the WVM social twin. Run under
// -race (CI does), it pins the sharing story: one compiled program in
// the provider cache, pooled VMs and hosts recycled across users, and
// no state bleeding between requests — each user always sees their own
// profile.
func TestWVMTwinConcurrentInvokes(t *testing.T) {
	p := core.NewProvider(core.Config{Name: "gwtest", Enforce: true})
	if err := apps.InstallWVMTwins(p); err != nil {
		t.Fatal(err)
	}
	compilesAfterInstall := p.Programs.Compiles()
	g := New(p, Options{})
	srv := httptest.NewServer(g)
	t.Cleanup(srv.Close)

	const users = 4
	const perUser = 3
	const rounds = 25
	clients := make([]*testClient, users)
	names := make([]string, users)
	for i := range clients {
		base := &testClient{t: t, server: srv}
		clients[i] = base.anon()
		names[i] = fmt.Sprintf("user%d", i)
		signup(clients[i], names[i], "pw")
		p.EnableApp(names[i], "social-wvm")
		p.GrantWrite(names[i], "social-wvm")
		// Each user stores a distinct sentinel profile via the twin.
		code, body := clients[i].post("/app/social-wvm/profile?owner="+names[i],
			url.Values{"body": {"sentinel-" + names[i]}})
		if code != 200 {
			t.Fatalf("seed profile %s: %d %q", names[i], code, body)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, users*perUser*rounds)
	for i := 0; i < users; i++ {
		for j := 0; j < perUser; j++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					code, body := clients[i].get("/app/social-wvm/profile?owner=" + names[i])
					if code != 200 {
						errs <- fmt.Sprintf("%s: status %d", names[i], code)
						return
					}
					if !strings.Contains(body, "sentinel-"+names[i]) {
						errs <- fmt.Sprintf("%s: own profile missing: %q", names[i], body)
						return
					}
					for k := 0; k < users; k++ {
						if k != i && strings.Contains(body, "sentinel-"+names[k]) {
							errs <- fmt.Sprintf("%s: LEAK: saw %s's profile", names[i], names[k])
							return
						}
					}
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// The storm must not have compiled anything new: every invoke hit
	// the cached compiled program.
	if got := p.Programs.Compiles(); got != compilesAfterInstall {
		t.Errorf("request path recompiled: %d compiles after install, %d after storm",
			compilesAfterInstall, got)
	}
}
