package gateway

// /fed/status: authenticated JSON view of federation sync health,
// backed by whatever callback cmd/w5d installed via SetFedStats.

import (
	"encoding/json"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"testing"

	"w5/internal/core"
)

func TestFedStatusEndpoint(t *testing.T) {
	p := core.NewProvider(core.Config{Name: "gwtest", Enforce: true})
	g := New(p, Options{})
	srv := httptest.NewServer(g)
	defer srv.Close()
	jar, _ := cookiejar.New(nil)
	tc := &testClient{t: t, c: &http.Client{Jar: jar}, server: srv}

	// Anonymous viewers get nothing — not even "not configured".
	if code, _ := tc.anon().get("/fed/status"); code != http.StatusUnauthorized {
		t.Fatalf("anonymous /fed/status: %d, want 401", code)
	}
	signup(tc, "bob", "pw")
	// Authenticated but federation is off: 404.
	if code, _ := tc.get("/fed/status"); code != http.StatusNotFound {
		t.Fatalf("unconfigured /fed/status: %d, want 404", code)
	}

	g.SetFedStats(func() any {
		return []map[string]any{{"peer": "providerA", "breaker": "closed"}}
	})
	code, body := tc.get("/fed/status")
	if code != http.StatusOK {
		t.Fatalf("/fed/status: %d %q", code, body)
	}
	var health []struct {
		Peer    string `json:"peer"`
		Breaker string `json:"breaker"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("non-JSON status: %v (%q)", err, body)
	}
	if len(health) != 1 || health[0].Peer != "providerA" || health[0].Breaker != "closed" {
		t.Errorf("status = %+v", health)
	}
}
