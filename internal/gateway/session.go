package gateway

// Session-cached request path.
//
// A login mints one immutable sessionState snapshot carrying everything
// the request path would otherwise re-derive per request: the resolved
// *core.User (which itself caches the boilerplate LabelPair, the
// trusted store.Cred, the session declassification privilege, and the
// audit destination — all minted once at CreateUser), the absolute
// expiry instant, and the per-user rate-limiter handle. The snapshot
// hangs off a session record behind an atomic.Pointer:
//
//	token ──sync.Map──▶ *session ──atomic.Pointer──▶ *sessionState
//
// Readers (every request) do at most one lock-free sync.Map load and
// one atomic pointer load; writers (logout, janitor) revoke by storing
// nil, which every holder of the *session — including per-connection
// caches on other goroutines — observes on its next load. States are
// never mutated after publication, so there is nothing to lock on the
// read side.
//
// Keep-alive connections go further: ConnContext (wired into the
// http.Server by cmd/w5d and the benchmarks) plants a connCache in each
// connection's base context. The first request on a connection resolves
// its cookie through the session map and parks the *session on the
// connection; subsequent requests bearing the same token skip the map
// entirely — zero map-level auth work — and still observe logout and
// expiry through the per-request atomic load + expiry check.
//
// Expired sessions used to linger in the map until the same token was
// presented again (i.e. usually forever — clients drop cookies). The
// janitor fixes that: because the TTL is uniform, login order equals
// expiry order, so a FIFO queue of (token, expiry) pairs is enough.
// Logins, cold resolutions, and every warmSweepEvery-th warm hit pop a
// bounded batch of expired entries off the queue front, and logout
// tombstones are compacted once they dominate the queue — the map and
// the queue both stay O(live sessions) under any traffic mix, with no
// sweeper goroutine and ~0 amortized cost on the warm path.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"w5/internal/audit"
	"w5/internal/core"
	"w5/internal/htmlsafe"
	"w5/internal/quota"
)

// sessionState is the immutable per-login snapshot. It is published
// once by startSession and never mutated; revocation replaces the
// session record's pointer with nil.
type sessionState struct {
	user    *core.User // resolved at login; caches labels/cred/caps/dest
	expires time.Time
	rate    *quota.Bucket // per-user handle (shared across the user's sessions); nil = unlimited
}

// session is one login's record in the session map. Its current state
// is behind an atomic pointer so per-connection caches can keep the
// record across requests and still observe logout/expiry immediately.
type session struct {
	state atomic.Pointer[sessionState]
}

// revoked reports (and effects) the record's revocation.
func (s *session) revoke() bool {
	return s.state.Swap(nil) != nil
}

// connCache is the per-connection warm cache, planted into the
// connection's base context by ConnContext. net/http serves HTTP/1.x
// requests on one connection sequentially, but the entry is an atomic
// pointer anyway so an HTTP/2-style concurrent server cannot race it.
type connCache struct {
	e atomic.Pointer[connEntry]
}

type connEntry struct {
	token string
	sess  *session
}

// connKey keys the connCache in the connection context.
type connKey struct{}

// ConnContext plants the per-connection session cache; wire it into the
// http.Server serving this gateway:
//
//	srv := &http.Server{Handler: gw, ConnContext: gw.ConnContext}
//
// Without it the gateway still works — every request just takes the
// cold (session-map) path.
func (g *Gateway) ConnContext(ctx context.Context, _ net.Conn) context.Context {
	return context.WithValue(ctx, connKey{}, &connCache{})
}

// Stats are the gateway's session-path counters (test hooks and
// operational visibility).
type Stats struct {
	// LiveSessions is the number of session records currently in the map.
	LiveSessions int64
	// WarmHits counts requests served entirely from the per-connection
	// cache: no session-map load, no user-map lookup, no derivation.
	WarmHits uint64
	// ColdResolves counts requests that resolved their cookie through
	// the session map (first request on a connection, cache misses, and
	// servers without ConnContext wiring).
	ColdResolves uint64
	// Swept counts sessions the janitor evicted after expiry.
	Swept uint64
	// QueuedExpiries is the janitor queue's current length (live
	// sessions + not-yet-compacted tombstones).
	QueuedExpiries int
	// LoginThrottled counts login/signup attempts refused by the
	// per-source limiter (loginlimit.go) before any password hashing.
	LoginThrottled uint64
	// SanitizeCache snapshots the sanitized-output cache (zero value
	// when the cache is disabled).
	SanitizeCache htmlsafe.CacheStats
}

// Stats snapshots the counters.
func (g *Gateway) Stats() Stats {
	g.janMu.Lock()
	queued := len(g.expiry) - g.janHead
	g.janMu.Unlock()
	st := Stats{
		LiveSessions:   g.live.Load(),
		WarmHits:       g.warmHits.Load(),
		ColdResolves:   g.coldResolves.Load(),
		Swept:          g.swept.Load(),
		QueuedExpiries: queued,
		LoginThrottled: g.loginThrottled.Load(),
	}
	if g.sanCache != nil {
		st.SanitizeCache = g.sanCache.Stats()
	}
	return st
}

// now reads the gateway clock (injectable for tests).
func (g *Gateway) now() time.Time {
	return g.clock.Load().(func() time.Time)()
}

// newToken mints a 192-bit session token.
func newToken() (string, error) {
	b := make([]byte, 24)
	if _, err := rand.Read(b); err != nil {
		// Never hand out a guessable session: a failed entropy read must
		// fail the login, not weaken the token space.
		return "", err
	}
	return hex.EncodeToString(b), nil
}

// session resolves the request's session snapshot; nil means anonymous.
//
// Warm path (per-connection cache hit): one atomic load + expiry check.
// Cold path: one lock-free session-map load, then the record is parked
// on the connection for the rest of the keep-alive stream.
func (g *Gateway) session(r *http.Request) *sessionState {
	c, err := r.Cookie(SessionCookie)
	if err != nil || c.Value == "" {
		return nil
	}
	now := g.now()
	cache, _ := r.Context().Value(connKey{}).(*connCache)
	if cache != nil {
		if e := cache.e.Load(); e != nil && e.token == c.Value {
			if st := e.sess.state.Load(); st != nil && now.Before(st.expires) {
				// Every warmSweepEvery-th warm hit pays one bounded sweep,
				// so warm-only keep-alive traffic still reclaims expired
				// logins (otherwise only logins and cold resolves would).
				if g.warmHits.Add(1)%warmSweepEvery == 0 {
					g.sweep(now)
				}
				return st
			}
			// Revoked or expired: drop the entry so the connection stops
			// pinning the dead session record. CompareAndSwap so a
			// concurrent refresh of the cache is not clobbered.
			cache.e.CompareAndSwap(e, nil)
		}
	}
	g.coldResolves.Add(1)
	g.sweep(now)
	v, ok := g.sessions.Load(c.Value)
	if !ok {
		return nil
	}
	s := v.(*session)
	st := s.state.Load()
	if st == nil {
		return nil
	}
	if !now.Before(st.expires) {
		g.dropSession(c.Value, s)
		return nil
	}
	if cache != nil {
		cache.e.Store(&connEntry{token: c.Value, sess: s})
	}
	return st
}

// viewer resolves the authenticated user name; "" means anonymous.
func (g *Gateway) viewer(r *http.Request) string {
	if st := g.session(r); st != nil {
		return st.user.Name
	}
	return ""
}

// startSession mints a session for an authenticated user and sets the
// cookie. The single login-time GetUser is the last user-map lookup the
// session's requests will ever do.
func (g *Gateway) startSession(w http.ResponseWriter, user string) error {
	u, err := g.p.GetUser(user)
	if err != nil {
		return err
	}
	tok, err := newToken()
	if err != nil {
		return err
	}
	now := g.now()
	st := &sessionState{user: u, expires: now.Add(g.ttl), rate: g.userRate(user)}
	s := &session{}
	s.state.Store(st)
	g.sessions.Store(tok, s)
	g.live.Add(1)

	g.janMu.Lock()
	g.expiry = append(g.expiry, expiryEntry{token: tok, expires: st.expires})
	g.janMu.Unlock()
	g.sweep(now)

	http.SetCookie(w, &http.Cookie{
		Name: SessionCookie, Value: tok, Path: "/",
		HttpOnly: true, SameSite: http.SameSiteLaxMode,
	})
	g.p.Log.Appendf(audit.KindLogin, user, "session", "established")
	return nil
}

// dropSession removes a record from the map and revokes its state so
// connection caches holding the record observe the removal. The
// janitor-queue entry stays behind as a tombstone until sweep compacts
// it (deadQueued is the compaction trigger).
func (g *Gateway) dropSession(token string, s *session) {
	g.janMu.Lock()
	if _, ok := g.sessions.LoadAndDelete(token); ok {
		g.live.Add(-1)
		g.deadQueued++
	}
	g.janMu.Unlock()
	s.revoke()
}

// expiryEntry is one janitor queue slot. The TTL is uniform, so the
// queue is appended in expiry order and only ever popped at the front.
type expiryEntry struct {
	token   string
	expires time.Time
}

// sweepBatch bounds how many queue entries one sweep examines, so no
// single request absorbs an unbounded backlog.
const sweepBatch = 16

// warmSweepEvery spaces the warm path's sweep triggers: one bounded
// sweep per this many warm hits keeps expired-session reclamation
// going under pure keep-alive traffic at ~0 amortized cost.
const warmSweepEvery = 256

// sweep pops up to sweepBatch expired sessions off the janitor queue,
// then compacts it if logout tombstones dominate. Runs on logins, cold
// resolutions, and every warmSweepEvery-th warm hit. When the queue
// front has not expired and tombstones are few it costs one mutex and
// two compares.
func (g *Gateway) sweep(now time.Time) {
	g.janMu.Lock()
	defer g.janMu.Unlock()
	for n := 0; n < sweepBatch && g.janHead < len(g.expiry); n++ {
		e := g.expiry[g.janHead]
		if now.Before(e.expires) {
			break
		}
		g.janHead++
		if v, ok := g.sessions.LoadAndDelete(e.token); ok {
			// Logout already removed its own entry; only count sessions
			// the janitor itself evicted.
			g.live.Add(-1)
			g.swept.Add(1)
			v.(*session).revoke()
		} else {
			// The slot was a tombstone (dropped before its nominal
			// expiry) and the pop just consumed it; keep the compaction
			// trigger honest or stale counts fire spurious rebuilds.
			g.deadQueued--
		}
	}
	// Compact the consumed prefix once it dominates the queue.
	if g.janHead > 64 && g.janHead*2 >= len(g.expiry) {
		g.expiry = append(g.expiry[:0], g.expiry[g.janHead:]...)
		g.janHead = 0
	}
	// Logout leaves its queue slot behind until the nominal expiry;
	// under login/logout churn those tombstones would make the queue
	// O(login rate × TTL) while the map is near-empty. Once tombstones
	// dominate, rebuild the queue keeping only tokens still in the map —
	// O(queue) at halving trigger points, so amortized O(1) per drop.
	if d := g.deadQueued; d > 64 && 2*d >= len(g.expiry)-g.janHead {
		kept := make([]expiryEntry, 0, (len(g.expiry)-g.janHead)/2)
		for _, e := range g.expiry[g.janHead:] {
			if _, ok := g.sessions.Load(e.token); ok {
				kept = append(kept, e)
			}
		}
		g.expiry = kept
		g.janHead = 0
		// The rebuild removed every tombstone, and drops serialize on
		// janMu, so zero is exact here, not a heuristic reset.
		g.deadQueued = 0
	}
}

// userRate returns the user's shared rate-limiter handle (nil when rate
// limiting is disabled). The bucket is per user, not per session, so
// re-logging in cannot reset a drained budget; sessions cache the
// handle so requests skip this map.
func (g *Gateway) userRate(user string) *quota.Bucket {
	if g.opts.RequestRate <= 0 || g.opts.RequestBurst <= 0 {
		return nil
	}
	if v, ok := g.rates.Load(user); ok {
		return v.(*quota.Bucket)
	}
	v, _ := g.rates.LoadOrStore(user, quota.NewBucket(g.opts.RequestBurst, g.opts.RequestRate))
	return v.(*quota.Bucket)
}

// allowSession enforces the request budget for a resolved session (or
// the shared anonymous bucket when st is nil).
func (g *Gateway) allowSession(st *sessionState) bool {
	b := g.anonRate
	if st != nil {
		b = st.rate
	}
	if b == nil {
		return true
	}
	return b.Take(1)
}
