package gateway

// Session-cache lifecycle tests: the warm-path contract (no map-level
// auth work on keep-alive requests), revocation visibility through
// per-connection caches, janitor eviction of expired logins, response
// equivalence between the cached and cold paths, and the whole
// machinery under the race detector.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"w5/internal/core"
)

// tryLogin drives the login handler directly (no server) and returns
// the session cookie.
func tryLogin(g *Gateway, user, pass string) (*http.Cookie, error) {
	form := url.Values{"user": {user}, "password": {pass}}
	req := httptest.NewRequest("POST", "/login", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("login %s: status %d", user, rec.Code)
	}
	for _, c := range rec.Result().Cookies() {
		if c.Name == SessionCookie {
			return c, nil
		}
	}
	return nil, fmt.Errorf("login %s: no session cookie", user)
}

func directLogin(t *testing.T, g *Gateway, user, pass string) *http.Cookie {
	t.Helper()
	c, err := tryLogin(g, user, pass)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// whoami serves /whoami with the given connection context and cookie.
func whoami(g *Gateway, ctx context.Context, cookie *http.Cookie) string {
	req := httptest.NewRequest("GET", "/whoami", nil).WithContext(ctx)
	req.AddCookie(cookie)
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	return strings.TrimSpace(rec.Body.String())
}

// TestWarmSessionSkipsResolution pins the tentpole contract: after the
// first request on a connection, keep-alive requests resolve their
// session from the per-connection cache — zero session-map loads — and
// allocate no more than the cold path that re-resolves every time.
func TestWarmSessionSkipsResolution(t *testing.T) {
	p := core.NewProvider(core.Config{Name: "warm", Enforce: true})
	if _, err := p.CreateUser("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	g := New(p, Options{})
	cookie := directLogin(t, g, "bob", "pw")
	warmCtx := g.ConnContext(context.Background(), nil)

	// First request on the "connection" is the one allowed cold resolve.
	if got := whoami(g, warmCtx, cookie); got != "bob" {
		t.Fatalf("whoami = %q", got)
	}
	s0 := g.Stats()
	const n = 64
	for i := 0; i < n; i++ {
		if got := whoami(g, warmCtx, cookie); got != "bob" {
			t.Fatalf("warm whoami #%d = %q", i, got)
		}
	}
	s1 := g.Stats()
	if cold := s1.ColdResolves - s0.ColdResolves; cold != 0 {
		t.Errorf("warm requests did %d session-map resolves, want 0", cold)
	}
	if hits := s1.WarmHits - s0.WarmHits; hits != n {
		t.Errorf("warm hits = %d, want %d", hits, n)
	}

	// Allocation guard: the cached path must not allocate more than the
	// per-request (cold) derivation it replaces.
	warm := testing.AllocsPerRun(200, func() {
		whoami(g, warmCtx, cookie)
	})
	cold := testing.AllocsPerRun(200, func() {
		whoami(g, context.Background(), cookie)
	})
	if warm > cold {
		t.Errorf("warm-session request allocates more than cold resolution: %.1f > %.1f allocs/op", warm, cold)
	}
}

// TestLogoutRevokesConnCachedSession: revocation must be visible
// through per-connection caches immediately — the atomic nil-state
// store, not the map delete, is what they observe.
func TestLogoutRevokesConnCachedSession(t *testing.T) {
	p := core.NewProvider(core.Config{Name: "revoke", Enforce: true})
	if _, err := p.CreateUser("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	g := New(p, Options{})
	cookie := directLogin(t, g, "bob", "pw")
	warmCtx := g.ConnContext(context.Background(), nil)
	if got := whoami(g, warmCtx, cookie); got != "bob" {
		t.Fatalf("whoami = %q", got)
	}

	req := httptest.NewRequest("POST", "/logout", nil).WithContext(warmCtx)
	req.AddCookie(cookie)
	g.ServeHTTP(httptest.NewRecorder(), req)

	if got := whoami(g, warmCtx, cookie); got != "(anonymous)" {
		t.Errorf("conn-cached session survived logout: whoami = %q", got)
	}
	if live := g.Stats().LiveSessions; live != 0 {
		t.Errorf("live sessions after logout = %d, want 0", live)
	}
}

// TestJanitorEvictsExpiredSessions pins the unbounded-growth fix: under
// login churn, expired sessions leave the map without ever being
// presented again, and each sweep does bounded work.
func TestJanitorEvictsExpiredSessions(t *testing.T) {
	p := core.NewProvider(core.Config{Name: "janitor", Enforce: true})
	if _, err := p.CreateUser("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	g := New(p, Options{SessionTTL: time.Minute})
	var nowNs atomic.Int64
	nowNs.Store(time.Unix(1_000_000, 0).UnixNano())
	g.SetClock(func() time.Time { return time.Unix(0, nowNs.Load()) })

	const old = 100
	for i := 0; i < old; i++ {
		directLogin(t, g, "bob", "pw")
	}
	if live := g.Stats().LiveSessions; live != old {
		t.Fatalf("live sessions = %d, want %d", live, old)
	}

	// All 100 expire; fresh logins amortize the sweep, <= sweepBatch
	// evictions each.
	nowNs.Add(int64(2 * time.Minute))
	const churn = 7
	for i := 0; i < churn; i++ {
		directLogin(t, g, "bob", "pw")
	}
	st := g.Stats()
	if st.LiveSessions != churn {
		t.Errorf("live sessions after churn = %d, want %d (expired sessions not evicted)",
			st.LiveSessions, churn)
	}
	if st.Swept != old {
		t.Errorf("janitor swept %d sessions, want %d", st.Swept, old)
	}
}

// TestWarmTrafficStillSweeps: expired sessions must be reclaimed even
// when all traffic is warm keep-alive hits (no logins, no cold
// resolves) — the warm path's periodic sweep trigger.
func TestWarmTrafficStillSweeps(t *testing.T) {
	p := core.NewProvider(core.Config{Name: "warmsweep", Enforce: true})
	if _, err := p.CreateUser("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	g := New(p, Options{SessionTTL: time.Minute})
	var nowNs atomic.Int64
	nowNs.Store(time.Unix(1_000_000, 0).UnixNano())
	g.SetClock(func() time.Time { return time.Unix(0, nowNs.Load()) })

	const old = 40
	for i := 0; i < old; i++ {
		directLogin(t, g, "bob", "pw")
	}
	nowNs.Add(int64(2 * time.Minute)) // all 40 expire
	cookie := directLogin(t, g, "bob", "pw")
	warmCtx := g.ConnContext(context.Background(), nil)
	whoami(g, warmCtx, cookie) // prime the connection (one cold resolve)

	// Pure warm traffic: enough hits for ceil(40/sweepBatch) periodic
	// sweeps, with margin.
	for i := 0; i < 4*warmSweepEvery; i++ {
		if got := whoami(g, warmCtx, cookie); got != "bob" {
			t.Fatalf("warm whoami = %q", got)
		}
	}
	st := g.Stats()
	if st.LiveSessions != 1 {
		t.Errorf("live sessions under warm-only traffic = %d, want 1 (expired logins not reclaimed)",
			st.LiveSessions)
	}
	if st.Swept < old-sweepBatch { // the priming login/resolve swept some too
		t.Errorf("swept = %d, want >= %d", st.Swept, old-sweepBatch)
	}
}

// TestLogoutTombstonesCompacted: under login/logout churn the janitor
// queue must stay O(live sessions), not O(logins × TTL) — logged-out
// sessions' queue slots are compacted long before their nominal expiry.
func TestLogoutTombstonesCompacted(t *testing.T) {
	p := core.NewProvider(core.Config{Name: "tombstone", Enforce: true})
	if _, err := p.CreateUser("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	g := New(p, Options{}) // default 24h TTL: nothing expires in-test
	const churn = 300
	maxQueued := 0
	for i := 0; i < churn; i++ {
		cookie := directLogin(t, g, "bob", "pw")
		req := httptest.NewRequest("POST", "/logout", nil)
		req.AddCookie(cookie)
		g.ServeHTTP(httptest.NewRecorder(), req)
		if q := g.Stats().QueuedExpiries; q > maxQueued {
			maxQueued = q
		}
	}
	st := g.Stats()
	if st.LiveSessions != 0 {
		t.Fatalf("live sessions = %d, want 0", st.LiveSessions)
	}
	// Compaction triggers once tombstones pass 64 and half the queue;
	// the high-water mark must stay near that trigger line, far below
	// the churn volume.
	if maxQueued > 160 {
		t.Errorf("janitor queue high-water mark = %d entries for %d login/logout cycles (tombstones not compacted)",
			maxQueued, churn)
	}
	if st.QueuedExpiries > 160 {
		t.Errorf("janitor queue after churn = %d entries, want compacted", st.QueuedExpiries)
	}
}

// TestCachedSessionEquivalence: the cached-session HTTP path must
// return byte-identical responses to (a) cold per-request resolution
// and (b) the core-level derivation the gateway wraps.
func TestCachedSessionEquivalence(t *testing.T) {
	p := core.NewProvider(core.Config{Name: "equiv", Enforce: true})
	p.InstallApp(profileApp{})
	g := New(p, Options{FilterHTML: false})
	srv := httptest.NewUnstartedServer(g)
	srv.Config.ConnContext = g.ConnContext
	srv.Start()
	defer srv.Close()

	jar, _ := cookiejar.New(nil)
	warm := &testClient{t: t, c: &http.Client{Jar: jar}, server: srv}
	signup(warm, "bob", "pw")
	writeProfile(t, p, "bob", "<b>bob's equivalence data</b>")
	warm.post("/grants/enable", url.Values{"app": {"profile"}})
	// Cold client: same cookies, but a fresh connection per request, so
	// every request takes the map-resolution path.
	cold := &testClient{t: t, c: &http.Client{
		Jar:       jar,
		Transport: &http.Transport{DisableKeepAlives: true},
	}, server: srv}

	for _, path := range []string{"/app/profile/?owner=bob", "/whoami"} {
		type resp struct {
			code int
			body string
		}
		var got []resp
		for i := 0; i < 2; i++ { // second warm request is the cache hit
			c, b := warm.get(path)
			got = append(got, resp{c, b})
		}
		for i := 0; i < 2; i++ {
			c, b := cold.get(path)
			got = append(got, resp{c, b})
		}
		for i := 1; i < len(got); i++ {
			if got[i] != got[0] {
				t.Errorf("%s: response %d = %+v, want %+v (warm/cold divergence)",
					path, i, got[i], got[0])
			}
		}
		// The HTTP path must agree with the core derivation it fronts.
		if strings.HasPrefix(path, "/app/") {
			inv, err := p.Invoke("profile", core.AppRequest{
				Viewer: "bob", Owner: "bob", Path: "/", Method: "GET",
				Params: map[string]string{},
			})
			if err != nil {
				t.Fatal(err)
			}
			body, err := p.ExportCheck(inv, "bob")
			if err != nil {
				t.Fatal(err)
			}
			if got[0].code != 200 || got[0].body != string(body) {
				t.Errorf("HTTP response %+v != core derivation %q", got[0], body)
			}
		}
	}

	// Denials must be equivalent too: a stranger is refused on both
	// paths, with no body leak on either.
	stranger := warm.anon()
	signup(stranger, "charlie", "pw")
	code, body := stranger.get("/app/profile/?owner=bob")
	inv, err := p.Invoke("profile", core.AppRequest{
		Viewer: "charlie", Owner: "bob", Path: "/", Method: "GET",
		Params: map[string]string{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ExportCheck(inv, "charlie"); err == nil {
		t.Fatal("core derivation allowed stranger export")
	}
	if code != 403 || strings.Contains(body, "equivalence data") {
		t.Errorf("stranger over HTTP = %d %q, want 403 with no data", code, body)
	}
}

// TestConcurrentSessionLifecycle exercises login, warm and cold
// requests, logout, expiry, and janitor sweeps from concurrent
// goroutines — the protocol the race detector audits in CI.
func TestConcurrentSessionLifecycle(t *testing.T) {
	p := core.NewProvider(core.Config{Name: "race", Enforce: true})
	const users = 4
	for i := 0; i < users; i++ {
		if _, err := p.CreateUser(fmt.Sprintf("u%d", i), "pw"); err != nil {
			t.Fatal(err)
		}
	}
	g := New(p, Options{SessionTTL: 50 * time.Millisecond})
	var nowNs atomic.Int64
	nowNs.Store(time.Unix(1_000_000, 0).UnixNano())
	g.SetClock(func() time.Time { return time.Unix(0, nowNs.Load()) })

	// One context shared by all goroutines (an HTTP/2-style connection
	// with concurrent streams) plus a private one per goroutine.
	shared := g.ConnContext(context.Background(), nil)
	errs := make(chan error, users)
	var wg sync.WaitGroup
	for w := 0; w < users; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", w)
			own := g.ConnContext(context.Background(), nil)
			for i := 0; i < 8; i++ {
				cookie, err := tryLogin(g, user, "pw")
				if err != nil {
					errs <- err
					return
				}
				for j := 0; j < 10; j++ {
					ctx := own
					if j%3 == 0 {
						ctx = shared
					}
					got := whoami(g, ctx, cookie)
					if got != user && got != "(anonymous)" {
						errs <- fmt.Errorf("whoami as %s = %q", user, got)
						return
					}
				}
				switch i % 3 {
				case 0: // explicit logout
					req := httptest.NewRequest("POST", "/logout", nil).WithContext(own)
					req.AddCookie(cookie)
					g.ServeHTTP(httptest.NewRecorder(), req)
				case 1: // let it expire; janitor reaps it later
					nowNs.Add(int64(20 * time.Millisecond))
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	for w := 0; w < users; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// Drain: everything expires, churn sweeps the map empty.
	nowNs.Add(int64(time.Minute))
	for i := 0; i < 16; i++ {
		directLogin(t, g, "u0", "pw")
	}
	nowNs.Add(int64(time.Minute))
	directLogin(t, g, "u0", "pw")
	if live := g.Stats().LiveSessions; live > 17 {
		t.Errorf("live sessions after drain = %d, want bounded by recent logins", live)
	}
}
