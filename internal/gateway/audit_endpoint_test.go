package gateway

import (
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"w5/internal/audit"
	"w5/internal/core"
	"w5/internal/difc"
)

// serveGateway serves an already-built Gateway (tests that need the
// *Gateway or a custom provider; newTestSetup covers the common case).
func serveGateway(t *testing.T, g *Gateway) *testClient {
	t.Helper()
	srv := httptest.NewServer(g)
	t.Cleanup(srv.Close)
	jar, _ := cookiejar.New(nil)
	return &testClient{t: t, c: &http.Client{Jar: jar}, server: srv}
}

func TestAuditEndpointRequiresAuth(t *testing.T) {
	_, tc := newTestSetup(t, Options{})
	if code, _ := tc.get("/audit"); code != 401 {
		t.Errorf("anonymous /audit = %d, want 401", code)
	}
}

func TestAuditEndpointShowsOwnEventsOnly(t *testing.T) {
	p, tc := newTestSetup(t, Options{})
	if _, err := p.CreateUser("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateUser("eve", "pw"); err != nil {
		t.Fatal(err)
	}
	p.EnableApp("bob", "profile")
	p.EnableApp("eve", "scripty")
	if code, _ := tc.post("/login", url.Values{"user": {"bob"}, "password": {"pw"}}); code != 200 {
		t.Fatal("login failed")
	}
	code, body := tc.get("/audit")
	if code != 200 {
		t.Fatalf("/audit = %d, want 200", code)
	}
	if !strings.Contains(body, "grant") || !strings.Contains(body, "profile") {
		t.Errorf("bob's grant missing from trail:\n%s", body)
	}
	if strings.Contains(body, "eve") || strings.Contains(body, "scripty") {
		t.Errorf("another user's events leaked into bob's trail:\n%s", body)
	}
	// Kind filter narrows; since excludes the prefix.
	code, body = tc.get("/audit?kind=" + string(audit.KindLogin))
	if code != 200 || !strings.Contains(body, "login") || strings.Contains(body, "grant") {
		t.Errorf("kind filter broken (code %d):\n%s", code, body)
	}
	if code, _ := tc.get("/audit?since=notanumber"); code != 400 {
		t.Error("bad since accepted")
	}
	if code, _ := tc.get("/audit?limit=0"); code != 400 {
		t.Error("bad limit accepted")
	}
	// since at the top of the seq space yields nothing (no wraparound
	// back to the start of history).
	if code, body := tc.get("/audit?since=18446744073709551615"); code != 200 || body != "" {
		t.Errorf("since=MaxUint64: code %d body %q, want empty 200", code, body)
	}
}

// TestAuditViewCannotBeStolenByReservedNames: the /audit filter matches
// actor/subject strings, so the platform must refuse accounts that
// collide with system actors or namespaced principals.
func TestAuditViewCannotBeStolenByReservedNames(t *testing.T) {
	p, tc := newTestSetup(t, Options{})
	for _, name := range []string{"gateway", "provider", "user:bob", "viewer:bob", "home/bob", "a b"} {
		if _, err := p.CreateUser(name, "pw"); err == nil {
			t.Errorf("CreateUser(%q) accepted an audit-impersonating name", name)
		}
		if code, _ := tc.post("/signup", url.Values{"user": {name}, "password": {"pw"}}); code == 200 {
			t.Errorf("signup accepted reserved name %q", name)
		}
	}
}

// TestAuditEndpointReadsSpilledSegments pins the tentpole's API
// contract end to end: events that have been sealed, spilled to disk,
// and evicted from memory are still served by w5ctl-style inspection.
func TestAuditEndpointReadsSpilledSegments(t *testing.T) {
	dir := t.TempDir()
	alog, err := audit.Open(audit.Options{
		SegmentSize: 8, RingSegments: 1, SpillDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { alog.Close() })
	p := core.NewProvider(core.Config{Name: "gwtest", Enforce: true, AuditLog: alog})
	p.InstallApp(profileApp{})
	tc := serveGateway(t, New(p, Options{}))
	if _, err := p.CreateUser("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	if code, _ := tc.post("/login", url.Values{"user": {"bob"}, "password": {"pw"}}); code != 200 {
		t.Fatal("login failed")
	}
	// Bob's own flows push his early events (account creation, login)
	// out of the ring and onto disk.
	bob, _ := p.GetUser("bob")
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(bob.SecrecyTag),
		Integrity: difc.NewLabel(bob.WriteTag),
	}
	if err := p.FS.Write(p.UserCred("bob"), "/home/bob/social/profile",
		[]byte("hi"), label); err != nil {
		t.Fatal(err)
	}
	p.EnableApp("bob", "profile")
	for i := 0; i < 100; i++ {
		if code, _ := tc.get("/app/profile/?owner=bob"); code != 200 {
			t.Fatalf("request %d failed", i)
		}
	}
	alog.Rotate()
	alog.Flush()
	if st := alog.Stats(); st.DiskSegments == 0 {
		t.Fatal("test premise broken: nothing spilled")
	}
	code, body := tc.get("/audit?kind=" + string(audit.KindLogin) + "&limit=5")
	if code != 200 {
		t.Fatalf("/audit = %d, want 200", code)
	}
	// The account-creation login event is among the very first appends:
	// long since evicted from the ring, it must come back from disk.
	if !strings.Contains(body, "created with tags") {
		t.Errorf("spilled account-creation event missing:\n%s", body)
	}
}

func TestLoginRateLimitStopsKDFFlood(t *testing.T) {
	p := core.NewProvider(core.Config{Name: "gwtest", Enforce: true})
	if _, err := p.CreateUser("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	g := New(p, Options{LoginRate: 0.001, LoginBurst: 3})
	tc := serveGateway(t, g)
	// Budget: 3 attempts from this source (valid or not — charging
	// happens before the KDF, so failures cannot be free probes).
	for i := 0; i < 2; i++ {
		if code, _ := tc.post("/login", url.Values{"user": {"bob"}, "password": {"wrong"}}); code != 401 {
			t.Fatalf("attempt %d: got %d, want 401", i, code)
		}
	}
	if code, _ := tc.post("/login", url.Values{"user": {"bob"}, "password": {"pw"}}); code != 200 {
		t.Fatal("third attempt (valid) should still pass")
	}
	if code, _ := tc.post("/login", url.Values{"user": {"bob"}, "password": {"pw"}}); code != 429 {
		t.Error("fourth attempt not throttled")
	}
	if code, _ := tc.post("/signup", url.Values{"user": {"new"}, "password": {"pw"}}); code != 429 {
		t.Error("signup shares the attempt budget (same KDF-shaped cost)")
	}
	if st := g.Stats(); st.LoginThrottled < 2 {
		t.Errorf("LoginThrottled = %d, want >= 2", st.LoginThrottled)
	}
	// An authenticated session keeps working: the limiter gates the
	// KDF, not the request path.
	if code, _ := tc.get("/whoami"); code != 200 {
		t.Error("existing session throttled")
	}
}

func TestLoginRateLimitDisabledByDefault(t *testing.T) {
	p, tc := newTestSetup(t, Options{})
	if _, err := p.CreateUser("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if code, _ := tc.post("/login", url.Values{"user": {"bob"}, "password": {"pw"}}); code != 200 {
			t.Fatalf("login %d = %d with no limiter configured", i, code)
		}
	}
}
