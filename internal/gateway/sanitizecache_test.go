package gateway

import (
	"net/url"
	"strings"
	"sync"
	"testing"

	"w5/internal/audit"
)

// TestSanitizeCacheServesHotPage: with the output cache enabled, a hot
// dirty page is filtered once and served from the cache afterwards,
// byte-identical, with every request still audited.
func TestSanitizeCacheServesHotPage(t *testing.T) {
	p, tc := newTestSetup(t, Options{
		FilterHTML:           true,
		SanitizeCacheEntries: 64,
		SanitizeCacheBytes:   1 << 20,
	})
	signup(tc, "bob", "pw")

	var first string
	for i := 0; i < 5; i++ {
		code, body := tc.get("/app/scripty/")
		if code != 200 {
			t.Fatalf("request %d: status %d", i, code)
		}
		if strings.Contains(body, "steal") || strings.Contains(body, "onclick") {
			t.Fatalf("request %d leaked script: %q", i, body)
		}
		if i == 0 {
			first = body
		} else if body != first {
			t.Fatalf("request %d differed from first: %q vs %q", i, body, first)
		}
	}

	g := tcGateway(tc)
	st := g.Stats().SanitizeCache
	if st.Misses != 1 || st.Hits != 4 {
		t.Errorf("cache stats = %+v, want 1 miss / 4 hits", st)
	}

	// A cache hit must still audit the sanitization: count gateway
	// export events for the scripty app.
	n := 0
	if err := p.Log.EventsByKind(audit.KindExport, 1, func(e audit.Event) bool {
		if e.Actor == "gateway" && e.Subject == "scripty" {
			n++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("sanitize audit events = %d, want 5 (one per request, hits included)", n)
	}
}

// TestSanitizeCacheDisabledByDefault: plain Options leave the cache
// off and the filter still works.
func TestSanitizeCacheDisabledByDefault(t *testing.T) {
	_, tc := newTestSetup(t, Options{FilterHTML: true})
	signup(tc, "bob", "pw")
	for i := 0; i < 3; i++ {
		if _, body := tc.get("/app/scripty/"); strings.Contains(body, "steal") {
			t.Fatalf("script leaked: %q", body)
		}
	}
	if st := tcGateway(tc).Stats().SanitizeCache; st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Errorf("disabled cache recorded activity: %+v", st)
	}
}

// TestSanitizeCacheConcurrentHotPage hammers one hot page from many
// goroutines (run under -race in CI): pooled rewrite buffers and the
// shared cache entry must never cross-contaminate responses.
func TestSanitizeCacheConcurrentHotPage(t *testing.T) {
	_, tc := newTestSetup(t, Options{
		FilterHTML:           true,
		SanitizeCacheEntries: 64,
		SanitizeCacheBytes:   1 << 20,
	})
	signup(tc, "bob", "pw")
	_, want := tc.get("/app/scripty/")

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := tc.anon()
			for i := 0; i < 50; i++ {
				code, body := c.get("/app/scripty/")
				if code != 200 || body != want {
					t.Errorf("code=%d body=%q, want 200 %q", code, body, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestParamlessGETStillRoutesOwner: the lazy-params fast path must not
// change owner/param routing semantics.
func TestParamlessGETStillRoutesOwner(t *testing.T) {
	p, tc := newTestSetup(t, Options{FilterHTML: true})
	signup(tc, "alice", "pw")
	writeProfile(t, p, "alice", "alice data")
	tc.post("/grants/enable", url.Values{"app": {"profile"}})

	// With an owner param (query form).
	code, body := tc.get("/app/profile/?owner=alice")
	if code != 200 || !strings.Contains(body, "alice data") {
		t.Fatalf("owner GET = %d %q", code, body)
	}
	// Paramless GET: no form parse, no params map; the empty owner
	// still defaults to the viewer (core.Invoke), so alice sees her
	// own profile.
	code, body = tc.get("/app/profile/")
	if code != 200 || !strings.Contains(body, "alice data") {
		t.Fatalf("paramless GET = %d %q", code, body)
	}
	// POST form owner still works.
	code, body = tc.post("/app/profile/", url.Values{"owner": {"alice"}})
	if code != 200 || !strings.Contains(body, "alice data") {
		t.Fatalf("owner POST = %d %q", code, body)
	}
}

// tcGateway digs the *Gateway back out of the test server.
func tcGateway(tc *testClient) *Gateway {
	g, ok := tc.server.Config.Handler.(*Gateway)
	if !ok {
		tc.t.Fatalf("test server handler is %T, not *Gateway", tc.server.Config.Handler)
	}
	return g
}
