package declass

import (
	"errors"
	"testing"
	"time"

	"w5/internal/audit"
	"w5/internal/difc"
)

// mapEnv backs Env with an in-memory map, standing in for the labeled
// store in unit tests.
type mapEnv map[string]string

func (m mapEnv) ReadOwnerFile(path string) ([]byte, error) {
	v, ok := m[path]
	if !ok {
		return nil, errors.New("not found")
	}
	return []byte(v), nil
}

func req(owner, viewer string, data string) Request {
	return Request{Owner: owner, Viewer: viewer, App: "app:test", Path: "/p", Data: []byte(data)}
}

func TestOwnerOnly(t *testing.T) {
	p := OwnerOnly{}
	cases := []struct {
		viewer string
		want   bool
	}{
		{"bob", true},
		{"alice", false},
		{"", false}, // anonymous: never the owner
	}
	for _, tt := range cases {
		if got := p.Decide(req("bob", tt.viewer, "x"), nil).Allow; got != tt.want {
			t.Errorf("OwnerOnly viewer=%q = %v, want %v", tt.viewer, got, tt.want)
		}
	}
}

func TestPublic(t *testing.T) {
	if !(Public{}).Decide(req("bob", "", "x"), nil).Allow {
		t.Error("public denied anonymous")
	}
}

func TestFriendList(t *testing.T) {
	env := mapEnv{"/social/friends": "alice\n# a comment\n\ncarol\n"}
	p := FriendList{}
	cases := []struct {
		viewer string
		want   bool
	}{
		{"bob", true},   // owner
		{"alice", true}, // friend
		{"carol", true}, // friend after comment/blank
		{"charlie", false},
		{"", false},
		{"# a comment", false}, // comment lines are not names
	}
	for _, tt := range cases {
		if got := p.Decide(req("bob", tt.viewer, "x"), env).Allow; got != tt.want {
			t.Errorf("FriendList viewer=%q = %v, want %v", tt.viewer, got, tt.want)
		}
	}
	// Unreadable friend list fails closed.
	if p.Decide(req("bob", "alice", "x"), mapEnv{}).Allow {
		t.Error("unreadable friend list allowed export")
	}
	// Custom path.
	env2 := mapEnv{"/lists/buddies": "dave"}
	p2 := FriendList{FriendsPath: "/lists/buddies"}
	if !p2.Decide(req("bob", "dave", "x"), env2).Allow {
		t.Error("custom path not consulted")
	}
}

func TestGroup(t *testing.T) {
	p := Group{GroupName: "roommates", Members: []string{"alice", "dave"}}
	if !p.Decide(req("bob", "alice", "x"), nil).Allow {
		t.Error("member denied")
	}
	if p.Decide(req("bob", "eve", "x"), nil).Allow {
		t.Error("non-member allowed")
	}
	if !p.Decide(req("bob", "bob", "x"), nil).Allow {
		t.Error("owner denied")
	}
	if p.Name() != "group:roommates" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestTimeWindow(t *testing.T) {
	at := func(h int) func() time.Time {
		return func() time.Time { return time.Date(2026, 6, 10, h, 30, 0, 0, time.UTC) }
	}
	p := TimeWindow{Inner: Public{}, FromHour: 9, ToHour: 17, Clock: at(12)}
	if !p.Decide(req("bob", "alice", "x"), nil).Allow {
		t.Error("in-window denied")
	}
	p.Clock = at(20)
	if p.Decide(req("bob", "alice", "x"), nil).Allow {
		t.Error("out-of-window allowed")
	}
	// Wrapping window 22-06.
	night := TimeWindow{Inner: Public{}, FromHour: 22, ToHour: 6, Clock: at(23)}
	if !night.Decide(req("bob", "alice", "x"), nil).Allow {
		t.Error("wrapped window (late) denied")
	}
	night.Clock = at(3)
	if !night.Decide(req("bob", "alice", "x"), nil).Allow {
		t.Error("wrapped window (early) denied")
	}
	night.Clock = at(12)
	if night.Decide(req("bob", "alice", "x"), nil).Allow {
		t.Error("wrapped window midday allowed")
	}
}

func TestChameleon(t *testing.T) {
	profile := "name: bob\n[private]\nloves sci-fi\n[/private]\nlikes dogs"
	p := Chameleon{Inner: Public{}, Trusted: []string{"bestfriend"}}

	// Owner sees everything.
	d := p.Decide(req("bob", "bob", profile), nil)
	if !d.Allow || d.Data != nil {
		t.Errorf("owner view transformed: %+v", d)
	}
	// Trusted viewer sees everything.
	d = p.Decide(req("bob", "bestfriend", profile), nil)
	if !d.Allow || d.Data != nil {
		t.Errorf("trusted view transformed: %+v", d)
	}
	// Love interest gets the redacted version.
	d = p.Decide(req("bob", "date", profile), nil)
	if !d.Allow {
		t.Fatal("chameleon denied allowed viewer")
	}
	got := string(d.Data)
	if got != "name: bob\nlikes dogs" {
		t.Errorf("redacted = %q", got)
	}
	// Gate still applies.
	gated := Chameleon{Inner: OwnerOnly{}}
	if gated.Decide(req("bob", "stranger", profile), nil).Allow {
		t.Error("chameleon bypassed inner gate")
	}
}

func TestAnyCombinator(t *testing.T) {
	p := Any{Policies: []Policy{OwnerOnly{}, Group{GroupName: "g", Members: []string{"alice"}}}}
	if !p.Decide(req("bob", "bob", "x"), nil).Allow {
		t.Error("owner denied")
	}
	if !p.Decide(req("bob", "alice", "x"), nil).Allow {
		t.Error("group member denied")
	}
	if p.Decide(req("bob", "eve", "x"), nil).Allow {
		t.Error("stranger allowed")
	}
	if (Any{}).Decide(req("b", "v", "x"), nil).Allow {
		t.Error("empty Any allowed")
	}
}

func TestManagerAskFlow(t *testing.T) {
	log := audit.New()
	env := mapEnv{"/social/friends": "alice"}
	m := NewManager(func(owner string) Env { return env }, log)

	sBob := difc.Tag(1)
	caps := difc.NewCapSet(difc.Minus(sBob))

	// No policy: ErrNoPolicy.
	if _, _, err := m.Ask(req("bob", "alice", "x")); !errors.Is(err, ErrNoPolicy) {
		t.Fatalf("no-policy Ask: %v", err)
	}

	m.Authorize("bob", FriendList{}, caps)

	// Friend gets the deposited capability.
	d, got, err := m.Ask(req("bob", "alice", "x"))
	if err != nil || !d.Allow {
		t.Fatalf("friend Ask: %+v, %v", d, err)
	}
	if !got.HasMinus(sBob) {
		t.Error("deposited capability not returned")
	}
	// Stranger denied, no capability.
	d, got, err = m.Ask(req("bob", "eve", "x"))
	if err != nil || d.Allow || !got.IsEmpty() {
		t.Fatalf("stranger Ask: %+v caps=%v err=%v", d, got, err)
	}
	// Audit: one declassify (allow) and one export-denied.
	if log.CountKind(audit.KindDeclassify) != 1 {
		t.Errorf("declassify audits = %d", log.CountKind(audit.KindDeclassify))
	}
	if log.CountKind(audit.KindExportDenied) != 1 {
		t.Errorf("export-denied audits = %d", log.CountKind(audit.KindExportDenied))
	}
}

func TestManagerMultiplePoliciesFirstAllowWins(t *testing.T) {
	m := NewManager(nil, nil)
	capsA := difc.NewCapSet(difc.Minus(difc.Tag(1)))
	capsB := difc.NewCapSet(difc.Minus(difc.Tag(2)))
	m.Authorize("bob", OwnerOnly{}, capsA)
	m.Authorize("bob", Public{}, capsB)

	// Stranger: OwnerOnly denies, Public allows -> capsB.
	d, caps, err := m.Ask(req("bob", "eve", "x"))
	if err != nil || !d.Allow || !caps.Equal(capsB) {
		t.Fatalf("Ask = %+v caps=%v err=%v", d, caps, err)
	}
	// Owner: OwnerOnly allows first -> capsA.
	_, caps, _ = m.Ask(req("bob", "bob", "x"))
	if !caps.Equal(capsA) {
		t.Errorf("first-allow caps = %v, want %v", caps, capsA)
	}
}

func TestManagerRevoke(t *testing.T) {
	m := NewManager(nil, nil)
	m.Authorize("bob", Public{}, difc.EmptyCaps)
	m.Authorize("bob", OwnerOnly{}, difc.EmptyCaps)
	if got := m.Policies("bob"); len(got) != 2 {
		t.Fatalf("Policies = %v", got)
	}
	m.Revoke("bob", "public")
	got := m.Policies("bob")
	if len(got) != 1 || got[0] != "owner-only" {
		t.Fatalf("after revoke: %v", got)
	}
	// Stranger now denied.
	if d, _, _ := m.Ask(req("bob", "eve", "x")); d.Allow {
		t.Error("revoked policy still allowing")
	}
}

func TestManagerNilEnvFailsClosed(t *testing.T) {
	m := NewManager(nil, nil)
	m.Authorize("bob", FriendList{}, difc.EmptyCaps)
	if d, _, _ := m.Ask(req("bob", "alice", "x")); d.Allow {
		t.Error("friend list with no env allowed")
	}
}
