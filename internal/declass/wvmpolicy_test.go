package declass

import (
	"testing"

	"w5/internal/wvm"
)

func compileFriendList(t *testing.T) WVMPolicy {
	t.Helper()
	prog, err := CompileFriendListWVM()
	if err != nil {
		t.Fatalf("assemble friend-list policy: %v", err)
	}
	return WVMPolicy{PolicyName: "friendlist@1.0", Prog: prog}
}

func TestWVMFriendListMatchesGoPolicy(t *testing.T) {
	env := mapEnv{"/social/friends": "alice\nbob-the-builder\ncarol"}
	wvmPol := compileFriendList(t)
	goPol := FriendList{}

	cases := []struct {
		owner, viewer string
	}{
		{"bob", "bob"},             // owner
		{"bob", "alice"},           // friend (first line)
		{"bob", "carol"},           // friend (last line, no trailing newline)
		{"bob", "bob-the-builder"}, // friend with dashes
		{"bob", "eve"},             // stranger
		{"bob", "ali"},             // prefix of a friend: not a friend
		{"bob", "alicex"},          // superstring: not a friend
		{"bob", ""},                // anonymous
		{"alice", "alice"},         // owner with different name
	}
	for _, tt := range cases {
		r := req(tt.owner, tt.viewer, "payload")
		got := wvmPol.Decide(r, env).Allow
		want := goPol.Decide(r, env).Allow
		if got != want {
			t.Errorf("owner=%q viewer=%q: wvm=%v go=%v", tt.owner, tt.viewer, got, want)
		}
	}
}

func TestWVMFriendListUnreadableFileDenies(t *testing.T) {
	p := compileFriendList(t)
	if p.Decide(req("bob", "alice", "x"), mapEnv{}).Allow {
		t.Error("unreadable friends file allowed")
	}
}

func TestWVMPolicyFaultFailsClosed(t *testing.T) {
	// A policy that divides by zero must deny, not crash the platform.
	prog, err := wvm.Assemble("push 1\npush 0\ndiv\nhalt", nil)
	if err != nil {
		t.Fatal(err)
	}
	p := WVMPolicy{PolicyName: "buggy", Prog: prog}
	d := p.Decide(req("bob", "alice", "x"), mapEnv{})
	if d.Allow {
		t.Error("faulting policy allowed export")
	}
}

func TestWVMPolicyGasLimitFailsClosed(t *testing.T) {
	prog, err := wvm.Assemble("loop: jmp loop", nil)
	if err != nil {
		t.Fatal(err)
	}
	p := WVMPolicy{PolicyName: "spinner", Prog: prog, Gas: 1000}
	if p.Decide(req("bob", "alice", "x"), mapEnv{}).Allow {
		t.Error("spinning policy allowed export")
	}
}

func TestWVMPolicyTrivialAllowDeny(t *testing.T) {
	allow, _ := wvm.Assemble("push 1\nhalt", nil)
	deny, _ := wvm.Assemble("push 0\nhalt", nil)
	if !(WVMPolicy{PolicyName: "yes", Prog: allow}).Decide(req("b", "v", "x"), nil).Allow {
		t.Error("allow-all policy denied")
	}
	if (WVMPolicy{PolicyName: "no", Prog: deny}).Decide(req("b", "v", "x"), nil).Allow {
		t.Error("deny-all policy allowed")
	}
}

func TestWVMPolicyName(t *testing.T) {
	p := compileFriendList(t)
	if p.Name() != "wvm:friendlist@1.0" {
		t.Errorf("Name = %q", p.Name())
	}
}

// TestWVMFriendListSizeIsSmall pins the E4 claim at unit scale: the
// bytecode friend-list declassifier must be tiny (well under a
// kilobyte) — "much smaller than entire applications".
func TestWVMFriendListSizeIsSmall(t *testing.T) {
	p := compileFriendList(t)
	size := len(p.Prog.Marshal())
	if size > 1024 {
		t.Errorf("friend-list declassifier is %d bytes; expected < 1024", size)
	}
	t.Logf("friend-list declassifier: %d bytes of module", size)
}
