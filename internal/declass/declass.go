// Package declass implements the W5 declassifier framework: the small,
// pluggable, user-authorized agents that may move data across the
// security perimeter (§3.1 "Privacy Protection").
//
// The paper gives declassifiers two defining characteristics, both
// honored here:
//
//  1. "They are agnostic to the structure of the data they are
//     declassifying" — a Policy sees an opaque payload plus who owns
//     it, who is asking, and which app is serving; the same friend-list
//     policy therefore guards photos, blog posts, or anything else.
//  2. "They are 'pluggable' and factored out of larger applications" —
//     policies are small values registered with the Manager, not code
//     inside applications; users pick them independently of apps, and
//     experiment E4 quantifies how much smaller they are than the
//     applications they guard.
//
// The Manager holds, for each user, the export capability (s_u−) that
// the user granted alongside each authorized policy. When the gateway
// needs to export data still tainted by s_u, it asks the Manager; the
// Manager consults u's policies and, only on an affirmative decision,
// exercises the stored capability. Every exercise is audited.
package declass

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"w5/internal/audit"
	"w5/internal/difc"
)

// Request describes one export attempt, from the declassifier's point
// of view. The payload is opaque (property 1 above).
type Request struct {
	Owner  string // user whose secrecy tag gates this export
	Viewer string // authenticated requesting user; "" = anonymous client
	App    string // application serving the request
	Path   string // resource identifier (for auditing and policy context)
	Data   []byte // the payload that would cross the perimeter
}

// Decision is a policy's verdict.
type Decision struct {
	Allow  bool
	Reason string
	// Data, if non-nil, replaces the payload on export — how a
	// "chameleon" policy adjusts output per viewer. Policies that
	// merely gate leave it nil.
	Data []byte
}

// Allow builds an affirmative decision.
func Allow(reason string) Decision { return Decision{Allow: true, Reason: reason} }

// Deny builds a negative decision.
func Deny(reason string) Decision { return Decision{Allow: false, Reason: reason} }

// Env gives a policy read access to its authorizing owner's data — the
// friend list, group rosters, whatever the policy needs. The Manager
// constructs an Env bound to the owner, using the owner's own read
// privilege; a policy can never read other users' data through it.
type Env interface {
	// ReadOwnerFile reads a file belonging to the authorizing owner.
	ReadOwnerFile(path string) ([]byte, error)
}

// Policy decides export requests. Implementations must be safe for
// concurrent use.
type Policy interface {
	// Name identifies the policy for auditing and revocation.
	Name() string
	// Decide renders a verdict; it must not mutate req.Data.
	Decide(req Request, env Env) Decision
}

// ErrNoPolicy reports that no authorized policy covers an owner.
var ErrNoPolicy = errors.New("declass: no authorized policy")

// grant pairs an authorized policy with the export capability the owner
// deposited for it.
type grant struct {
	policy Policy
	caps   difc.CapSet
}

// Manager tracks which policies each user has authorized and holds the
// corresponding export privileges. Safe for concurrent use.
//
// Verdicts from cacheable policies are served from a bounded cache
// keyed by the owner's credential epoch and policy-set fingerprint; see
// cache.go and README.md for the invalidation argument. Every cache hit
// is audited identically to a fresh consultation.
type Manager struct {
	mu     sync.RWMutex
	grants map[string][]grant // owner -> authorized policies, in grant order
	envFor func(owner string) Env
	log    *audit.Log
	owners sync.Map // owner -> *ownerState, republished on every grant change
	cache  atomic.Pointer[verdictCache]
}

// NewManager returns a Manager. envFor builds the owner-scoped data
// view handed to policies (nil yields an Env whose reads always fail);
// log may be nil. The verdict cache starts enabled at
// DefaultVerdictCacheEntries; SetVerdictCacheEntries(0) disables it.
func NewManager(envFor func(owner string) Env, log *audit.Log) *Manager {
	if envFor == nil {
		envFor = func(string) Env { return noEnv{} }
	}
	m := &Manager{grants: make(map[string][]grant), envFor: envFor, log: log}
	m.cache.Store(newVerdictCache(DefaultVerdictCacheEntries))
	return m
}

type noEnv struct{}

func (noEnv) ReadOwnerFile(string) ([]byte, error) {
	return nil, errors.New("declass: no environment configured")
}

// Authorize records that owner entrusts policy with the given export
// capabilities (typically the s_owner− capability). This is the §3.1
// moment: "If Bob wants to use W5 social networking, he must grant an
// appropriate declassifier his data export privileges."
func (m *Manager) Authorize(owner string, policy Policy, caps difc.CapSet) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.grants[owner] = append(m.grants[owner], grant{policy: policy, caps: caps})
	m.republishOwner(owner)
	if m.log != nil {
		m.log.Appendf(audit.KindPolicyChange, owner, policy.Name(),
			"authorized declassifier with %s", caps)
	}
}

// Revoke removes every authorization of the named policy for owner.
func (m *Manager) Revoke(owner, policyName string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	kept := m.grants[owner][:0]
	for _, g := range m.grants[owner] {
		if g.policy.Name() != policyName {
			kept = append(kept, g)
		}
	}
	m.grants[owner] = kept
	m.republishOwner(owner)
	if m.log != nil {
		m.log.Appendf(audit.KindPolicyChange, owner, policyName, "revoked declassifier")
	}
}

// Policies lists the names of owner's authorized policies, sorted.
func (m *Manager) Policies(owner string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for _, g := range m.grants[owner] {
		out = append(out, g.policy.Name())
	}
	sort.Strings(out)
	return out
}

// Ask consults owner's authorized policies about req, in authorization
// order, returning the first affirmative decision together with the
// capabilities deposited for that policy. Returns ErrNoPolicy if owner
// authorized nothing, and a deny decision if all policies refuse.
// Every consultation outcome is audited with the policy name and
// reason — the provider-visible trail that makes declassifiers "easier
// to audit" operationally as well as statically.
func (m *Manager) Ask(req Request) (Decision, difc.CapSet, error) {
	// The owner's epoch/fingerprint pair is read BEFORE the grants and
	// before any policy reads owner data: a concurrent grant change or
	// owner-file write advances the epoch, so a verdict computed from
	// the older state is stored under a key no future lookup can match
	// — stale positives are unreachable, never served (see README.md).
	st, _ := m.owners.Load(req.Owner)
	if st == nil {
		return Deny("no policy"), difc.EmptyCaps, ErrNoPolicy
	}
	state := st.(*ownerState)
	if state.n == 0 {
		return Deny("no policy"), difc.EmptyCaps, ErrNoPolicy
	}
	cache := m.cache.Load()
	var key verdictKey
	if cache != nil {
		key = verdictKey{owner: req.Owner, viewer: req.Viewer, app: req.App, path: req.Path}
		if v := cache.lookup(key, state.epoch, state.fpr); v != nil {
			m.auditVerdict(req, v.allow, v.policy, v.reason)
			if v.allow {
				return Decision{Allow: true, Reason: v.reason}, v.caps, nil
			}
			return Deny(v.reason), difc.EmptyCaps, nil
		}
	}
	m.mu.RLock()
	grants := append([]grant(nil), m.grants[req.Owner]...)
	m.mu.RUnlock()
	if len(grants) == 0 {
		return Deny("no policy"), difc.EmptyCaps, ErrNoPolicy
	}
	env := m.envFor(req.Owner)
	cacheable := cache != nil
	var lastReason string
	for _, g := range grants {
		// A non-cacheable policy anywhere in the consulted prefix
		// poisons the whole verdict: its future answer could change
		// without an epoch bump and alter which policy decides.
		if cacheable && !policyCacheable(g.policy) {
			cacheable = false
		}
		d := g.policy.Decide(req, env)
		if d.Allow {
			m.auditVerdict(req, true, g.policy.Name(), d.Reason)
			if cacheable && d.Data == nil {
				cache.store(key, &verdict{
					epoch: state.epoch, fpr: state.fpr,
					allow: true, reason: d.Reason,
					policy: g.policy.Name(), caps: g.caps,
				})
			}
			return d, g.caps, nil
		}
		lastReason = d.Reason
	}
	m.auditVerdict(req, false, "", lastReason)
	if cacheable {
		cache.store(key, &verdict{
			epoch: state.epoch, fpr: state.fpr,
			allow: false, reason: lastReason,
		})
	}
	return Deny(lastReason), difc.EmptyCaps, nil
}

// auditVerdict writes the consultation outcome to the audit log. Cache
// hits and fresh consultations go through the same code path, so the
// two produce byte-identical trails — the property the differential
// lifecycle suite pins.
func (m *Manager) auditVerdict(req Request, allow bool, policyName, reason string) {
	if m.log == nil {
		return
	}
	if allow {
		m.log.Appendf(audit.KindDeclassify, policyName,
			req.Owner+"→"+displayViewer(req.Viewer),
			"app=%s path=%s: %s", req.App, req.Path, reason)
	} else {
		m.log.Appendf(audit.KindExportDenied, req.App,
			req.Owner+"→"+displayViewer(req.Viewer),
			"all policies refused: %s", reason)
	}
}

func displayViewer(v string) string {
	if v == "" {
		return "(anonymous)"
	}
	return v
}

// ---- Standard policy library ------------------------------------------

// OwnerOnly is the boilerplate W5 policy (§3.1): "Bob's data can only
// leave the security perimeter if destined for Bob's browser."
type OwnerOnly struct{}

// Name implements Policy.
func (OwnerOnly) Name() string { return "owner-only" }

// Decide implements Policy.
func (OwnerOnly) Decide(req Request, _ Env) Decision {
	if req.Viewer != "" && req.Viewer == req.Owner {
		return Allow("viewer is owner")
	}
	return Deny("viewer is not owner")
}

// Public always allows — the policy a user attaches to data they have
// deliberately published.
type Public struct{}

// Name implements Policy.
func (Public) Name() string { return "public" }

// Decide implements Policy.
func (Public) Decide(Request, Env) Decision { return Allow("data is public") }

// FriendList allows the owner and anyone named in the owner's friend
// file (one username per line, '#' comments). This is the §3.1 example:
// "A correct declassifier in this context will send Bob's profile to
// users on Bob's friend list and not to others." Note it is data-
// structure agnostic: it never inspects the payload.
type FriendList struct {
	// FriendsPath is the owner-relative file holding the friend list;
	// empty means "/social/friends".
	FriendsPath string
}

// Name implements Policy.
func (FriendList) Name() string { return "friend-list" }

// Decide implements Policy.
func (f FriendList) Decide(req Request, env Env) Decision {
	if req.Viewer == "" {
		return Deny("anonymous viewer")
	}
	if req.Viewer == req.Owner {
		return Allow("viewer is owner")
	}
	path := f.FriendsPath
	if path == "" {
		path = "/social/friends"
	}
	data, err := env.ReadOwnerFile(path)
	if err != nil {
		return Deny("friend list unreadable")
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == req.Viewer {
			return Allow("viewer on friend list")
		}
	}
	return Deny("viewer not on friend list")
}

// Group allows a fixed member set — an "idiosyncratic" policy a user
// might configure for roommates (§2's example: output "viewed only by
// his roommates").
type Group struct {
	GroupName string
	Members   []string
}

// Name implements Policy.
func (g Group) Name() string { return "group:" + g.GroupName }

// Decide implements Policy.
func (g Group) Decide(req Request, _ Env) Decision {
	if req.Viewer == req.Owner && req.Viewer != "" {
		return Allow("viewer is owner")
	}
	for _, m := range g.Members {
		if m == req.Viewer && req.Viewer != "" {
			return Allow("viewer in group " + g.GroupName)
		}
	}
	return Deny("viewer not in group " + g.GroupName)
}

// TimeWindow allows exports only within [FromHour, ToHour) UTC,
// wrapping past midnight if FromHour > ToHour. Another idiosyncratic
// policy; composes around an inner policy.
type TimeWindow struct {
	Inner    Policy
	FromHour int
	ToHour   int
	Clock    func() time.Time // nil = time.Now
}

// Name implements Policy.
func (t TimeWindow) Name() string {
	return fmt.Sprintf("time-window[%02d-%02d]:%s", t.FromHour, t.ToHour, t.Inner.Name())
}

// Decide implements Policy.
func (t TimeWindow) Decide(req Request, env Env) Decision {
	now := time.Now
	if t.Clock != nil {
		now = t.Clock
	}
	h := now().UTC().Hour()
	in := false
	if t.FromHour <= t.ToHour {
		in = h >= t.FromHour && h < t.ToHour
	} else {
		in = h >= t.FromHour || h < t.ToHour
	}
	if !in {
		return Deny("outside permitted hours")
	}
	return t.Inner.Decide(req, env)
}

// Chameleon adjusts the payload per viewer, implementing §2's
// "chameleon profile display that adjusts its output based on the
// viewer (for instance, to hide his penchant for Sci-Fi novels from
// love interests)". Lines between "[private]" and "[/private]" markers
// are stripped unless the viewer is the owner or is listed in Trusted.
type Chameleon struct {
	Inner   Policy   // gates WHO may see anything at all
	Trusted []string // viewers who see the unredacted payload
}

// Name implements Policy.
func (c Chameleon) Name() string { return "chameleon:" + c.Inner.Name() }

// Decide implements Policy.
func (c Chameleon) Decide(req Request, env Env) Decision {
	d := c.Inner.Decide(req, env)
	if !d.Allow {
		return d
	}
	if req.Viewer == req.Owner && req.Viewer != "" {
		return d
	}
	for _, t := range c.Trusted {
		if t == req.Viewer && req.Viewer != "" {
			return d
		}
	}
	var out []string
	hiding := false
	for _, line := range strings.Split(string(req.Data), "\n") {
		switch strings.TrimSpace(line) {
		case "[private]":
			hiding = true
			continue
		case "[/private]":
			hiding = false
			continue
		}
		if !hiding {
			out = append(out, line)
		}
	}
	d.Data = []byte(strings.Join(out, "\n"))
	d.Reason += " (redacted for viewer)"
	return d
}

// Any composes policies disjunctively: the first affirmative inner
// decision wins. Users combine policies without writing code.
type Any struct {
	Policies []Policy
}

// Name implements Policy.
func (a Any) Name() string {
	names := make([]string, len(a.Policies))
	for i, p := range a.Policies {
		names[i] = p.Name()
	}
	return "any(" + strings.Join(names, ",") + ")"
}

// Decide implements Policy.
func (a Any) Decide(req Request, env Env) Decision {
	last := Deny("no inner policy")
	for _, p := range a.Policies {
		if d := p.Decide(req, env); d.Allow {
			return d
		} else {
			last = d
		}
	}
	return last
}
