package declass

import (
	"embed"
	"strings"
)

// PolicySource embeds the standard policy library so experiment E4 can
// measure the per-policy audit burden.
//
//go:embed declass.go
var PolicySource embed.FS

// StandardPolicyCount is the number of distinct policies shipped in
// declass.go (OwnerOnly, Public, FriendList, Group, TimeWindow,
// Chameleon, Any) — used to average the library's line count.
const StandardPolicyCount = 7

// PolicyLibraryLines returns the non-blank, non-comment line count of
// the standard policy library, EXCLUDING the Manager framework (from
// the file start through the Manager section) so the figure reflects
// only what a user audits when vetting policies.
func PolicyLibraryLines() int {
	data, err := PolicySource.ReadFile("declass.go")
	if err != nil {
		return 0
	}
	src := string(data)
	// The policy library starts at the marker comment.
	if i := strings.Index(src, "---- Standard policy library"); i >= 0 {
		src = src[i:]
	}
	n := 0
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		n++
	}
	return n
}
