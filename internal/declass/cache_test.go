package declass

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"w5/internal/audit"
	"w5/internal/difc"
)

// mutEnv is a mutable owner environment shared between the two managers
// under differential test, so both always read identical owner data.
type mutEnv struct {
	files map[string]string
}

func (e *mutEnv) ReadOwnerFile(path string) ([]byte, error) {
	v, ok := e.files[path]
	if !ok {
		return nil, errors.New("not found")
	}
	return []byte(v), nil
}

func fmtDecision(d Decision, caps difc.CapSet, err error) string {
	e := "<nil>"
	if err != nil {
		e = err.Error()
	}
	return fmt.Sprintf("allow=%v reason=%q data=%q caps=%v err=%s", d.Allow, d.Reason, d.Data, caps, e)
}

func fmtTrail(log *audit.Log, from uint64) string {
	var b strings.Builder
	for _, e := range log.Since(from) {
		fmt.Fprintf(&b, "%s|%s|%s|%s\n", e.Kind, e.Actor, e.Subject, e.Detail)
	}
	return b.String()
}

// TestVerdictCacheDifferential drives a cached and an uncached Manager
// through seeded-random interleavings of grants, revocations,
// friend-list edits, and Asks. Decisions, capabilities, errors, and
// audit trails must stay byte-identical — the property that licenses
// serving cached verdicts at all.
func TestVerdictCacheDifferential(t *testing.T) {
	users := []string{"alice", "bob", "carol", "dana"}
	envs := map[string]*mutEnv{}
	for _, u := range users {
		envs[u] = &mutEnv{files: map[string]string{}}
	}
	envFor := func(owner string) Env {
		if e, ok := envs[owner]; ok {
			return e
		}
		return noEnv{}
	}
	logC, logU := audit.New(), audit.New()
	cached := NewManager(envFor, logC)
	uncached := NewManager(envFor, logU)
	uncached.SetVerdictCacheEntries(0)

	policies := []Policy{
		Public{},
		OwnerOnly{},
		FriendList{},
		Group{GroupName: "room", Members: []string{"bob", "carol"}},
		Chameleon{Inner: FriendList{}},
		Any{Policies: []Policy{OwnerOnly{}, FriendList{}}},
	}
	names := make([]string, len(policies))
	for i, p := range policies {
		names[i] = p.Name()
	}
	caps := difc.NewCapSet(difc.Minus(7))

	rng := rand.New(rand.NewSource(11))
	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }
	viewers := append(append([]string(nil), users...), "", "stranger")

	for i := 0; i < 2000; i++ {
		owner := pick(users)
		fromC, fromU := uint64(logC.Len()), uint64(logU.Len())
		var outC, outU string
		var desc string
		switch n := rng.Intn(10); {
		case n < 6: // Ask — the hot path, most frequent
			r := Request{
				Owner: owner, Viewer: pick(viewers), App: "app:test",
				Path: pick([]string{"/p", "/q"}),
				Data: []byte("line\n[private]\nhidden\n[/private]\nend"),
			}
			desc = fmt.Sprintf("ask %s←%s %s", r.Owner, r.Viewer, r.Path)
			d, c, err := cached.Ask(r)
			outC = fmtDecision(d, c, err)
			d, c, err = uncached.Ask(r)
			outU = fmtDecision(d, c, err)
		case n < 7: // grant
			p := policies[rng.Intn(len(policies))]
			desc = fmt.Sprintf("grant %s %s", owner, p.Name())
			cached.Authorize(owner, p, caps)
			uncached.Authorize(owner, p, caps)
		case n < 8: // revoke
			name := pick(names)
			desc = fmt.Sprintf("revoke %s %s", owner, name)
			cached.Revoke(owner, name)
			uncached.Revoke(owner, name)
		default: // friend-list edit mid-stream: shared env + epoch bump
			var fs []string
			for j := rng.Intn(3); j > 0; j-- {
				fs = append(fs, pick(users))
			}
			desc = fmt.Sprintf("friends %s=%v", owner, fs)
			envs[owner].files["/social/friends"] = strings.Join(fs, "\n")
			cached.Invalidate(owner)
			uncached.Invalidate(owner)
		}
		if outC != outU {
			t.Fatalf("round %d (%s): decision diverged:\ncached:   %s\nuncached: %s", i, desc, outC, outU)
		}
		if tc, tu := fmtTrail(logC, fromC), fmtTrail(logU, fromU); tc != tu {
			t.Fatalf("round %d (%s): audit trail diverged:\ncached:\n%s\nuncached:\n%s", i, desc, tc, tu)
		}
	}
	if hits, _, _ := cached.CacheStats(); hits == 0 {
		t.Fatal("differential corpus never hit the cache")
	}
	if hits, _, _ := uncached.CacheStats(); hits != 0 {
		t.Fatalf("disabled cache reported %d hits", hits)
	}
}

// TestRevokedGrantNeverServedCachedPositive is the named invalidation
// guarantee from the design note: once a grant is revoked or the data a
// policy depends on changes, a previously cached allow verdict is
// unreachable — the very next Ask re-consults and denies.
func TestRevokedGrantNeverServedCachedPositive(t *testing.T) {
	env := &mutEnv{files: map[string]string{"/social/friends": "alice\n"}}
	m := NewManager(func(string) Env { return env }, nil)
	caps := difc.NewCapSet(difc.Minus(9))
	ask := func() (Decision, error) {
		d, _, err := m.Ask(Request{Owner: "bob", Viewer: "alice", App: "a", Path: "/p"})
		return d, err
	}

	// Scenario 1: revoking the only grant. Warm the cache first and
	// prove the second Ask was served from it.
	m.Authorize("bob", Public{}, caps)
	if d, err := ask(); err != nil || !d.Allow {
		t.Fatalf("initial ask: %+v %v", d, err)
	}
	if d, err := ask(); err != nil || !d.Allow {
		t.Fatalf("warm ask: %+v %v", d, err)
	}
	hits, _, _ := m.CacheStats()
	if hits == 0 {
		t.Fatal("second ask was not a cache hit; the scenario is vacuous")
	}
	m.Revoke("bob", "public")
	if d, err := ask(); !errors.Is(err, ErrNoPolicy) || d.Allow {
		t.Fatalf("ask after revoking sole grant: allow=%v err=%v, want deny+ErrNoPolicy", d.Allow, err)
	}

	// Scenario 2: revoking one of two grants changes the fingerprint,
	// so the cached positive from the permissive policy is unreachable
	// and the surviving stricter policy decides fresh.
	m.Authorize("bob", Public{}, caps)
	m.Authorize("bob", FriendList{}, caps)
	if d, _ := ask(); !d.Allow {
		t.Fatal("public grant should allow")
	}
	h0, _, _ := m.CacheStats()
	if d, _ := ask(); !d.Allow {
		t.Fatal("warm ask should allow")
	}
	if h1, _, _ := m.CacheStats(); h1 == h0 {
		t.Fatal("warm ask was not a cache hit")
	}
	m.Revoke("bob", "public")
	env.files["/social/friends"] = "# nobody\n"
	m.Invalidate("bob") // what the provider's store observer does on the edit
	if d, err := ask(); err != nil || d.Allow {
		t.Fatalf("ask after revoke+unfriend: allow=%v err=%v, want fresh deny", d.Allow, err)
	}

	// Scenario 3: the friend-list edit alone (grant set unchanged).
	env.files["/social/friends"] = "alice\n"
	m.Invalidate("bob")
	if d, _ := ask(); !d.Allow {
		t.Fatal("refriended ask should allow")
	}
	if d, _ := ask(); !d.Allow {
		t.Fatal("warm refriended ask should allow")
	}
	env.files["/social/friends"] = ""
	m.Invalidate("bob")
	if d, _ := ask(); d.Allow {
		t.Fatal("cached positive served after unfriending edit")
	}
}

// TestVerdictCacheability pins the cacheability contract: pure
// gate-only policies opt in, payload- and clock-dependent policies stay
// out, and one non-cacheable policy in the consulted prefix poisons the
// whole verdict.
func TestVerdictCacheability(t *testing.T) {
	cacheable := []Policy{
		Public{}, OwnerOnly{}, FriendList{}, Group{GroupName: "g"},
		Any{Policies: []Policy{OwnerOnly{}, Public{}}},
	}
	for _, p := range cacheable {
		if !policyCacheable(p) {
			t.Errorf("%s should be cacheable", p.Name())
		}
	}
	uncacheable := []Policy{
		Chameleon{Inner: Public{}},
		TimeWindow{Inner: Public{}, FromHour: 0, ToHour: 24, Clock: time.Now},
		Any{Policies: []Policy{Chameleon{Inner: Public{}}}},
		Any{}, // vacuous disjunction: nothing to vouch for purity
	}
	for _, p := range uncacheable {
		if policyCacheable(p) {
			t.Errorf("%s should NOT be cacheable", p.Name())
		}
	}

	// A Chameleon granted before a Public poisons caching even though
	// Public ultimately decides some requests: the Chameleon's answer
	// could change without an epoch bump (it rewrites per payload).
	m := NewManager(nil, nil)
	m.Authorize("o", Chameleon{Inner: OwnerOnly{}}, difc.EmptyCaps)
	m.Authorize("o", Public{}, difc.EmptyCaps)
	for i := 0; i < 3; i++ {
		d, _, err := m.Ask(Request{Owner: "o", Viewer: "v", App: "a", Path: "/p", Data: []byte("x")})
		if err != nil || !d.Allow {
			t.Fatalf("ask %d: %+v %v", i, d, err)
		}
	}
	if hits, _, _ := m.CacheStats(); hits != 0 {
		t.Fatalf("poisoned verdict served from cache (%d hits)", hits)
	}

	// A rewritten payload (Decision.Data != nil) is never cached even
	// when the deciding policy chain is otherwise cacheable-free.
	m2 := NewManager(nil, nil)
	m2.Authorize("o", Chameleon{Inner: Public{}}, difc.EmptyCaps)
	for i := 0; i < 3; i++ {
		d, _, err := m2.Ask(Request{Owner: "o", Viewer: "v", App: "a", Path: "/p",
			Data: []byte("keep\n[private]\ndrop\n[/private]")})
		if err != nil || !d.Allow || string(d.Data) != "keep" {
			t.Fatalf("chameleon ask %d: %+v %v", i, d, err)
		}
	}
	if hits, _, _ := m2.CacheStats(); hits != 0 {
		t.Fatalf("payload-rewriting verdict served from cache (%d hits)", hits)
	}
}

// TestVerdictCacheGenerationFlush fills a tiny cache past capacity and
// checks the generation flush: the count resets, correctness holds, and
// the flush counter advances.
func TestVerdictCacheGenerationFlush(t *testing.T) {
	m := NewManager(nil, nil)
	m.SetVerdictCacheEntries(4)
	m.Authorize("o", Public{}, difc.EmptyCaps)
	for i := 0; i < 16; i++ {
		viewer := fmt.Sprintf("v%d", i)
		for j := 0; j < 2; j++ {
			d, _, err := m.Ask(Request{Owner: "o", Viewer: viewer, App: "a", Path: "/p"})
			if err != nil || !d.Allow {
				t.Fatalf("ask %s/%d: %+v %v", viewer, j, d, err)
			}
		}
	}
	hits, misses, flushes := m.CacheStats()
	if flushes == 0 {
		t.Fatalf("no generation flush after 16 distinct keys in a 4-entry cache (hits=%d misses=%d)", hits, misses)
	}
	if hits == 0 {
		t.Fatal("repeat asks between flushes never hit")
	}
}
