// Verdict caching: the declassifier consultation on the export path is
// the last per-request DIFC cost that was still paid in full on every
// request (a policy consultation reads owner files — the friend list —
// and walks the grant chain). This file adds a bounded verdict cache in
// the style of the table package's credential-epoch visibility cache
// (PR 5): verdicts are keyed by an owner "epoch" that advances on every
// grant change AND on every write to the owner's data, so a revoked
// grant or an edited friend list makes every previously cached verdict
// unreachable — a stale positive can never be served. The full
// soundness and covert-channel argument lives in README.md.
package declass

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"w5/internal/difc"
)

// DefaultVerdictCacheEntries bounds the verdict cache a NewManager
// starts with. At ~128 bytes per entry the default costs well under a
// megabyte.
const DefaultVerdictCacheEntries = 4096

// Cacheable is an optional Policy extension. A policy whose Decide is a
// pure function of (owner, viewer, app, path) and the owner's stored
// data — no payload inspection, no clocks, no other ambient state —
// reports true and becomes eligible for verdict caching. Policies that
// do not implement Cacheable are conservatively treated as
// non-cacheable and consulted fresh on every request.
type Cacheable interface {
	CacheableVerdict() bool
}

// The stock gate-only policies are pure in exactly the cached sense:
// OwnerOnly and Group read only the request, FriendList reads only the
// request plus the owner's friend file (covered by the owner-data
// epoch; see Invalidate). Public is constant.
func (OwnerOnly) CacheableVerdict() bool  { return true }
func (Public) CacheableVerdict() bool     { return true }
func (FriendList) CacheableVerdict() bool { return true }
func (Group) CacheableVerdict() bool      { return true }

// WVMPolicy verdicts are cacheable: the VM is deterministic and its
// syscall surface exposes only the viewer name, owner name, and owner
// files — all covered by the epoch. (TimeWindow reads the clock and
// Chameleon rewrites the payload; neither implements Cacheable.)
func (p WVMPolicy) CacheableVerdict() bool { return true }

// Any is cacheable iff every inner policy is.
func (a Any) CacheableVerdict() bool {
	for _, p := range a.Policies {
		if !policyCacheable(p) {
			return false
		}
	}
	return len(a.Policies) > 0
}

func policyCacheable(p Policy) bool {
	c, ok := p.(Cacheable)
	return ok && c.CacheableVerdict()
}

// ownerState is the immutable (epoch, fingerprint, grant count) triple
// published per owner. Republished under Manager.mu on every grant
// change; read lock-free on the Ask path.
type ownerState struct {
	epoch uint64 // advances on Authorize/Revoke/Invalidate; never reused
	fpr   uint64 // FNV-1a over the grant chain's policy names, in order
	n     int    // grant count (0 short-circuits to ErrNoPolicy)
}

// republishOwner recomputes and publishes owner's state. Caller holds
// m.mu.
func (m *Manager) republishOwner(owner string) {
	var epoch uint64
	if prev, ok := m.owners.Load(owner); ok {
		epoch = prev.(*ownerState).epoch
	}
	gs := m.grants[owner]
	h := fnv.New64a()
	for _, g := range gs {
		h.Write([]byte(g.policy.Name()))
		h.Write([]byte{0})
	}
	m.owners.Store(owner, &ownerState{epoch: epoch + 1, fpr: h.Sum64(), n: len(gs)})
}

// Invalidate advances owner's credential epoch without changing the
// grant set, making every cached verdict for the owner unreachable.
// The provider calls this from its store write observer whenever any
// file under the owner's home changes — the "edited friend list is a
// new epoch" half of the invalidation argument.
func (m *Manager) Invalidate(owner string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prev, ok := m.owners.Load(owner)
	if !ok {
		return // nothing granted, nothing cached
	}
	st := prev.(*ownerState)
	m.owners.Store(owner, &ownerState{epoch: st.epoch + 1, fpr: st.fpr, n: st.n})
}

// SetVerdictCacheEntries resizes the verdict cache (dropping all cached
// verdicts); entries <= 0 disables caching entirely. Safe to call
// concurrently with Ask.
func (m *Manager) SetVerdictCacheEntries(entries int) {
	if entries <= 0 {
		m.cache.Store((*verdictCache)(nil))
		return
	}
	m.cache.Store(newVerdictCache(entries))
}

// CacheStats reports verdict-cache hits, misses, and generation
// flushes since the cache was created.
func (m *Manager) CacheStats() (hits, misses, flushes uint64) {
	c := m.cache.Load()
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.flushes.Load()
}

// verdictKey identifies one consultation. The payload is deliberately
// absent: only verdicts independent of it are ever stored.
type verdictKey struct {
	owner, viewer, app, path string
}

// verdict is one cached consultation outcome, pinned to the owner
// state it was computed under. Immutable once stored.
type verdict struct {
	epoch  uint64
	fpr    uint64
	allow  bool
	reason string
	policy string      // deciding policy name (allow verdicts)
	caps   difc.CapSet // capabilities deposited with the deciding grant
}

// verdictCache is a bounded lock-free map with generation flushing:
// when the entry count reaches the cap the whole generation is dropped
// and a fresh map published — O(1), no eviction scans, and sound
// because entries revalidate (epoch, fingerprint) on every hit anyway.
type verdictCache struct {
	capacity int64
	count    atomic.Int64
	gen      atomic.Pointer[sync.Map]
	hits     atomic.Uint64
	misses   atomic.Uint64
	flushes  atomic.Uint64
}

func newVerdictCache(entries int) *verdictCache {
	c := &verdictCache{capacity: int64(entries)}
	c.gen.Store(&sync.Map{})
	return c
}

// lookup returns the cached verdict for k iff it was computed under
// exactly the given owner state.
func (c *verdictCache) lookup(k verdictKey, epoch, fpr uint64) *verdict {
	if v, ok := c.gen.Load().Load(k); ok {
		ve := v.(*verdict)
		if ve.epoch == epoch && ve.fpr == fpr {
			c.hits.Add(1)
			return ve
		}
	}
	c.misses.Add(1)
	return nil
}

func (c *verdictCache) store(k verdictKey, v *verdict) {
	m := c.gen.Load()
	if _, loaded := m.LoadOrStore(k, v); loaded {
		// Refresh an existing (likely epoch-stale) entry in place; the
		// count is unchanged.
		m.Store(k, v)
		return
	}
	if c.count.Add(1) >= c.capacity {
		// Generation flush. Two racing flushes publish two fresh maps;
		// the loser's entries are simply lost — harmless.
		c.gen.Store(&sync.Map{})
		c.count.Store(0)
		c.flushes.Add(1)
	}
}
