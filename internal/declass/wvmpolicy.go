package declass

import (
	"w5/internal/wvm"
)

// WVMPolicy runs a user-uploaded W5 Assembly module as a declassifier —
// the fully general form of §3.1's "idiosyncratic" policies: any
// developer can publish one, any user can audit its listing and
// authorize it.
//
// Guest ABI (syscall numbers are the SysXxx constants):
//
//	sys viewer_len            -> pushes len(viewer)
//	sys owner_len             -> pushes len(owner)
//	sys copy_viewer (addr)    -> writes viewer to memory, pushes len
//	sys copy_owner  (addr)    -> writes owner to memory, pushes len
//	sys read_owner_file (pathAddr, pathLen, dstAddr, dstCap)
//	                          -> writes file contents, pushes n or -1
//
// The program's exit value decides: nonzero allows, zero denies. A
// program fault or gas exhaustion denies (fail closed).
const (
	SysViewerLen     uint16 = 1
	SysOwnerLen      uint16 = 2
	SysCopyViewer    uint16 = 3
	SysCopyOwner     uint16 = 4
	SysReadOwnerFile uint16 = 5
)

// WVMSyscallNames maps assembly names to numbers, for use with
// wvm.Assemble when building policy modules.
var WVMSyscallNames = map[string]uint16{
	"viewer_len":      SysViewerLen,
	"owner_len":       SysOwnerLen,
	"copy_viewer":     SysCopyViewer,
	"copy_owner":      SysCopyOwner,
	"read_owner_file": SysReadOwnerFile,
}

// WVMPolicy is a Policy backed by a sandboxed bytecode module.
type WVMPolicy struct {
	// PolicyName is reported by Name; conventionally "module@version".
	PolicyName string
	// Prog is the verified policy module.
	Prog *wvm.Program
	// Gas bounds each decision (default 100_000 instructions).
	Gas uint64
	// MemSize bounds guest memory (default 64 KiB).
	MemSize int
}

// Name implements Policy.
func (w WVMPolicy) Name() string { return "wvm:" + w.PolicyName }

// Decide implements Policy by executing the module. The module cannot
// export anything itself — it has no I/O syscalls beyond reading its
// own owner's files — so a malicious policy can at worst allow or deny
// wrongly, exactly the trust the user placed in it by authorizing it.
func (w WVMPolicy) Decide(req Request, env Env) Decision {
	gas := w.Gas
	if gas == 0 {
		gas = 100_000
	}
	table := wvm.SyscallTable{
		SysViewerLen: {Name: "viewer_len", Arity: 0,
			Fn: func(*wvm.VM, []int64) ([]int64, error) {
				return []int64{int64(len(req.Viewer))}, nil
			}},
		SysOwnerLen: {Name: "owner_len", Arity: 0,
			Fn: func(*wvm.VM, []int64) ([]int64, error) {
				return []int64{int64(len(req.Owner))}, nil
			}},
		SysCopyViewer: {Name: "copy_viewer", Arity: 1,
			Fn: func(vm *wvm.VM, args []int64) ([]int64, error) {
				if err := vm.WriteMem(args[0], []byte(req.Viewer)); err != nil {
					return []int64{-1}, nil
				}
				return []int64{int64(len(req.Viewer))}, nil
			}},
		SysCopyOwner: {Name: "copy_owner", Arity: 1,
			Fn: func(vm *wvm.VM, args []int64) ([]int64, error) {
				if err := vm.WriteMem(args[0], []byte(req.Owner)); err != nil {
					return []int64{-1}, nil
				}
				return []int64{int64(len(req.Owner))}, nil
			}},
		SysReadOwnerFile: {Name: "read_owner_file", Arity: 4,
			Fn: func(vm *wvm.VM, args []int64) ([]int64, error) {
				path, err := vm.ReadMem(args[0], args[1])
				if err != nil {
					return []int64{-1}, nil
				}
				data, err := env.ReadOwnerFile(string(path))
				if err != nil {
					return []int64{-1}, nil
				}
				if int64(len(data)) > args[3] {
					data = data[:args[3]]
				}
				if err := vm.WriteMem(args[2], data); err != nil {
					return []int64{-1}, nil
				}
				return []int64{int64(len(data))}, nil
			}},
	}
	vm := wvm.New(w.Prog, wvm.Config{Gas: gas, MemSize: w.MemSize, Syscalls: table})
	v, err := vm.Run()
	if err != nil {
		return Deny("policy module fault: " + err.Error())
	}
	if v != 0 {
		return Allow("policy module allowed")
	}
	return Deny("policy module denied")
}

// FriendListWVMSource is a complete W5 Assembly friend-list declassifier
// equivalent to the Go FriendList policy: it allows the owner, then
// scans the owner's "/social/friends" file (one name per line) for the
// viewer. It exists both as a working example of a bytecode policy and
// as the declassifier measured by experiment E4.
//
// Memory layout: the .data path string occupies low memory; the viewer
// is copied to 32, the owner to 256, and the friends file to 512.
const FriendListWVMSource = `
.data path "/social/friends"
; copy viewer to mem[32], length in g0
        push 32
        sys copy_viewer
        store 0
        load 0
        push 0
        le
        jnz deny            ; anonymous or failed copy => deny
; copy owner to mem[256], length in g1
        push 256
        sys copy_owner
        store 1
; if lengths equal, compare viewer vs owner byte by byte
        load 0
        load 1
        ne
        jnz loadfile
        push 0              ; i = 0 (g2)
        store 2
cmpown: load 2
        load 0
        ge
        jnz allow           ; all bytes equal => viewer is owner
        load 2
        push 32
        add
        mload               ; viewer[i]
        load 2
        push 256
        add
        mload               ; owner[i]
        ne
        jnz loadfile        ; mismatch => not owner, check friends
        load 2
        push 1
        add
        store 2
        jmp cmpown
; read friends file into mem[512], length in g3
loadfile:
        push @path
        push #path
        push 512
        push 4096
        sys read_owner_file
        store 3
        load 3
        push 0
        le
        jnz deny            ; unreadable or empty => deny
; scan lines: g4 = line start, g5 = cursor
        push 0
        store 4
        push 0
        store 5
scan:   load 5
        load 3
        ge
        jnz endline         ; end of file terminates final line
        load 5
        push 512
        add
        mload
        push 10             ; '\n'
        eq
        jnz endline
        load 5
        push 1
        add
        store 5
        jmp scan
endline:
; line is [g4, g5); compare with viewer length g0
        load 5
        load 4
        sub
        load 0
        ne
        jnz nextline
; lengths match: byte compare; g6 = i
        push 0
        store 6
cmp:    load 6
        load 0
        ge
        jnz allow           ; full match => friend
        load 6
        push 32
        add
        mload               ; viewer[i]
        load 4
        load 6
        add
        push 512
        add
        mload               ; line[i]
        ne
        jnz nextline
        load 6
        push 1
        add
        store 6
        jmp cmp
nextline:
        load 5
        load 3
        ge
        jnz deny            ; exhausted file => deny
        load 5
        push 1
        add
        dup
        store 4             ; next line starts after '\n'
        store 5
        jmp scan
allow:  push 1
        halt
deny:   push 0
        halt
`

// CompileFriendListWVM assembles FriendListWVMSource into a Program.
func CompileFriendListWVM() (*wvm.Program, error) {
	return wvm.Assemble(FriendListWVMSource, WVMSyscallNames)
}
