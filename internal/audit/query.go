package audit

// Queries over the segmented log. Every public query funnels through
// iterate, which merges the three storage tiers in sequence order:
//
//	spilled segment files  (oldest; only those already evicted from
//	                        the ring, so nothing is yielded twice)
//	the in-memory ring     (sealed, immutable segments)
//	the active segment     (a stable prefix captured under the lock)
//
// Sealed segments are immutable and the active segment is append-only,
// so a query holds the lock just long enough to capture slice headers;
// the actual scanning — including any deferred detail rendering and all
// disk reads — happens lock-free.

// rawFilter pre-filters records before their detail string is rendered
// (memory tier) or their event is yielded (disk tier): a kind or actor
// query over a large hot-path log never pays lazy fmt.Sprintf for
// non-matching events. Zero fields match everything.
type rawFilter struct {
	kind  Kind
	actor string
}

func (f rawFilter) match(kind Kind, actor string) bool {
	return (f.kind == "" || kind == f.kind) && (f.actor == "" || actor == f.actor)
}

// iterate yields every retained event with Seq >= from that passes f,
// in ascending sequence order. Returns false if the consumer stopped
// early. An unreadable spilled segment is skipped — the readable tiers
// are still served — and reported as the (first) returned error, so a
// damaged spill directory degrades queries instead of breaking them.
func (l *Log) iterate(from uint64, f rawFilter, yield func(Event) bool) (bool, error) {
	// Capture the memory tiers. Ring segments are immutable once
	// sealed; the active slice's populated prefix is immutable (appends
	// only grow it, and sealing swaps in a fresh array), so a
	// full-slice-expression header is a stable snapshot.
	l.mu.RLock()
	ring := append([]*segment(nil), l.ring...)
	act := l.active[:len(l.active):len(l.active)]
	actBase := l.seq - uint64(len(act)) + 1
	sp := l.sp
	l.mu.RUnlock()

	// memFirst is the lowest sequence number the memory tiers cover;
	// every disk segment below it has been evicted (eviction is
	// whole-segment and in order), every disk segment at or above it is
	// still in the ring and must not be read twice.
	memFirst := actBase
	if len(ring) > 0 {
		memFirst = ring[0].base
	}
	var firstErr error
	if sp != nil {
		for _, ds := range sp.diskSnapshot() {
			if ds.base >= memFirst {
				break
			}
			if ds.base+uint64(ds.count) <= from {
				continue
			}
			more, err := readDiskSegment(ds, from, f, yield)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if !more {
				return false, firstErr
			}
		}
	}
	for _, seg := range ring {
		if seg.last() < from {
			continue
		}
		if !scanRecords(seg.recs, from, f, yield) {
			return false, firstErr
		}
	}
	if len(act) > 0 && actBase+uint64(len(act)) > from {
		if !scanRecords(act, from, f, yield) {
			return false, firstErr
		}
	}
	return true, firstErr
}

// scanRecords yields the matching events of one in-memory record run.
func scanRecords(recs []record, from uint64, f rawFilter, yield func(Event) bool) bool {
	for i := range recs {
		r := &recs[i]
		if r.seq < from || !f.match(r.kind, r.actor) {
			continue
		}
		if !yield(r.event()) {
			return false
		}
	}
	return true
}

// Events streams every retained event with Seq >= from in sequence
// order, merging spilled segments, the in-memory ring, and the active
// segment transparently. Return false from yield to stop early. The
// error reports an unreadable spilled segment; events already yielded
// remain valid.
func (l *Log) Events(from uint64, yield func(Event) bool) error {
	_, err := l.iterate(from, rawFilter{}, yield)
	return err
}

// EventsByKind is Events restricted to one kind. The filter is applied
// below the rendering layer — in-memory records are tested before their
// deferred fmt.Sprintf, disk records before their Event is built — so a
// rare-kind query over a long history costs decoding, not rendering.
func (l *Log) EventsByKind(kind Kind, from uint64, yield func(Event) bool) error {
	_, err := l.iterate(from, rawFilter{kind: kind}, yield)
	return err
}

// collect gathers matching events, ignoring disk errors: the unreadable
// tail of a damaged spill directory degrades a diagnostic query, it
// does not break it. Events exposes the error for callers who care.
func (l *Log) collect(from uint64, f rawFilter) []Event {
	var out []Event
	l.iterate(from, f, func(e Event) bool {
		out = append(out, e)
		return true
	})
	return out
}

// Snapshot returns a copy of all retained events in sequence order.
func (l *Log) Snapshot() []Event {
	return l.collect(0, rawFilter{})
}

// Since returns all retained events with Seq > seq, for incremental
// consumers (the federation log shipper uses this). A seq at or past
// the top of the sequence space yields nothing (no wraparound).
func (l *Log) Since(seq uint64) []Event {
	from := seq + 1
	if from == 0 {
		return nil
	}
	return l.collect(from, rawFilter{})
}

// Filter returns the events for which keep returns true, in order.
func (l *Log) Filter(keep func(Event) bool) []Event {
	var out []Event
	l.iterate(0, rawFilter{}, func(e Event) bool {
		if keep(e) {
			out = append(out, e)
		}
		return true
	})
	return out
}

// ByKind returns all retained events of the given kind, in order. The
// kind test runs before detail rendering, so only matching events pay
// the lazy fmt.Sprintf.
func (l *Log) ByKind(kind Kind) []Event {
	return l.collect(0, rawFilter{kind: kind})
}

// ByActor returns all retained events with the given actor, in order.
// Like ByKind, non-matching records are skipped before rendering.
func (l *Log) ByActor(actor string) []Event {
	return l.collect(0, rawFilter{actor: actor})
}

// CountKind reports how many retained events of the given kind there
// are.
func (l *Log) CountKind(kind Kind) int {
	n := 0
	l.iterate(0, rawFilter{kind: kind}, func(Event) bool {
		n++
		return true
	})
	return n
}
