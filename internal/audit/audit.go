// Package audit provides the W5 provider's append-only audit log.
//
// The W5 paper places the burden of correctness on "a very small number
// of components" run by the provider (§1–§2). The audit log is how that
// promise is made inspectable: every privilege grant, every
// declassification, every denied flow, and every policy change is
// recorded with a monotonically increasing sequence number. Entries are
// immutable once appended; the log can be filtered for display (w5ctl
// audit) and is consulted by the security experiments to verify that
// denials happened for the right reason.
package audit

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind classifies an audit event.
type Kind string

// The event kinds recorded by the platform.
const (
	KindTagMint      Kind = "tag-mint"      // a fresh tag was created
	KindGrant        Kind = "grant"         // capabilities delegated
	KindRevoke       Kind = "revoke"        // capabilities revoked
	KindSpawn        Kind = "spawn"         // process created
	KindExit         Kind = "exit"          // process destroyed
	KindFlowAllowed  Kind = "flow-allowed"  // IPC or storage flow permitted
	KindFlowDenied   Kind = "flow-denied"   // IPC or storage flow denied
	KindExport       Kind = "export"        // data crossed the perimeter
	KindExportDenied Kind = "export-denied" // perimeter crossing denied
	KindDeclassify   Kind = "declassify"    // a declassifier exercised s_u-
	KindPolicyChange Kind = "policy-change" // user edited a policy
	KindQuota        Kind = "quota"         // a quota was exhausted
	KindLogin        Kind = "login"         // session established
	KindUpload       Kind = "upload"        // module uploaded to registry
	KindFederation   Kind = "federation"    // cross-provider sync event
)

// Event is one immutable audit record.
type Event struct {
	Seq     uint64    // assigned by the log, strictly increasing from 1
	Time    time.Time // wall-clock time of the append
	Kind    Kind
	Actor   string // the principal that acted (user, process, module)
	Subject string // what was acted upon (tag, file, endpoint, user)
	Detail  string // human-readable specifics
}

// String renders a single-line form suitable for terminals.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s %s actor=%s subject=%s %s",
		e.Seq, e.Time.UTC().Format(time.RFC3339), e.Kind, e.Actor, e.Subject, e.Detail)
}

// Log is a concurrency-safe append-only event log. The zero value is
// ready to use. An optional Clock may be injected for deterministic
// tests; it defaults to time.Now.
type Log struct {
	mu     sync.RWMutex
	events []Event
	seq    uint64
	clock  func() time.Time
	sink   io.Writer // optional mirror for every event line
}

// New returns an empty log.
func New() *Log { return &Log{} }

// SetClock injects a time source; nil restores time.Now. For tests.
func (l *Log) SetClock(clock func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clock = clock
}

// SetSink mirrors every appended event, rendered by Event.String plus a
// newline, to w. Pass nil to disable. Errors from the sink are ignored:
// auditing must never block the data path.
func (l *Log) SetSink(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = w
}

// Append records an event and returns its sequence number.
func (l *Log) Append(kind Kind, actor, subject, detail string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now
	if l.clock != nil {
		now = l.clock
	}
	l.seq++
	e := Event{Seq: l.seq, Time: now(), Kind: kind, Actor: actor, Subject: subject, Detail: detail}
	l.events = append(l.events, e)
	if l.sink != nil {
		fmt.Fprintln(l.sink, e.String())
	}
	return e.Seq
}

// Appendf is Append with a formatted detail string.
func (l *Log) Appendf(kind Kind, actor, subject, format string, args ...any) uint64 {
	return l.Append(kind, actor, subject, fmt.Sprintf(format, args...))
}

// Len reports the number of events recorded.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// Snapshot returns a copy of all events in sequence order.
func (l *Log) Snapshot() []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Since returns a copy of all events with Seq > seq, for incremental
// consumers (the federation log shipper uses this).
func (l *Log) Since(seq uint64) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	// Seq i is stored at index i-1; binary search unnecessary.
	start := int(seq)
	if start > len(l.events) {
		start = len(l.events)
	}
	out := make([]Event, len(l.events)-start)
	copy(out, l.events[start:])
	return out
}

// Filter returns the events for which keep returns true, in order.
func (l *Log) Filter(keep func(Event) bool) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for _, e := range l.events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// ByKind returns all events of the given kind, in order.
func (l *Log) ByKind(kind Kind) []Event {
	return l.Filter(func(e Event) bool { return e.Kind == kind })
}

// ByActor returns all events with the given actor, in order.
func (l *Log) ByActor(actor string) []Event {
	return l.Filter(func(e Event) bool { return e.Actor == actor })
}

// CountKind reports how many events of the given kind were recorded.
func (l *Log) CountKind(kind Kind) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
