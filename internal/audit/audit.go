// Package audit provides the W5 provider's append-only audit log.
//
// The W5 paper places the burden of correctness on "a very small number
// of components" run by the provider (§1–§2). The audit log is how that
// promise is made inspectable: every privilege grant, every
// declassification, every denied flow, and every policy change is
// recorded with a monotonically increasing sequence number. Entries are
// immutable once appended; the log can be filtered for display (w5ctl
// audit) and is consulted by the security experiments to verify that
// denials happened for the right reason.
package audit

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind classifies an audit event.
type Kind string

// The event kinds recorded by the platform.
const (
	KindTagMint      Kind = "tag-mint"      // a fresh tag was created
	KindGrant        Kind = "grant"         // capabilities delegated
	KindRevoke       Kind = "revoke"        // capabilities revoked
	KindSpawn        Kind = "spawn"         // process created
	KindExit         Kind = "exit"          // process destroyed
	KindFlowAllowed  Kind = "flow-allowed"  // IPC or storage flow permitted
	KindFlowDenied   Kind = "flow-denied"   // IPC or storage flow denied
	KindDrop         Kind = "msg-drop"      // policy-allowed IPC dropped (mailbox full / receiver dead)
	KindExport       Kind = "export"        // data crossed the perimeter
	KindExportDenied Kind = "export-denied" // perimeter crossing denied
	KindDeclassify   Kind = "declassify"    // a declassifier exercised s_u-
	KindPolicyChange Kind = "policy-change" // user edited a policy
	KindQuota        Kind = "quota"         // a quota was exhausted
	KindLogin        Kind = "login"         // session established
	KindUpload       Kind = "upload"        // module uploaded to registry
	KindFederation   Kind = "federation"    // cross-provider sync event
)

// Event is one immutable audit record.
type Event struct {
	Seq     uint64    // assigned by the log, strictly increasing from 1
	Time    time.Time // wall-clock time of the append
	Kind    Kind
	Actor   string // the principal that acted (user, process, module)
	Subject string // what was acted upon (tag, file, endpoint, user)
	Detail  string // human-readable specifics
}

// String renders a single-line form suitable for terminals.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s %s actor=%s subject=%s %s",
		e.Seq, e.Time.UTC().Format(time.RFC3339), e.Kind, e.Actor, e.Subject, e.Detail)
}

// record is the internal storage form of an event. Hot-path appends
// (flow-allowed, export, spawn/exit — one or more per request) defer the
// fmt.Sprintf of the detail string: format and args are stored raw and
// rendered only when the event is actually read. Arguments must therefore
// be immutable or by-value (labels, capability sets, strings, numbers) —
// every call site in the platform passes exactly those.
type record struct {
	seq     uint64
	time    time.Time
	kind    Kind
	actor   string
	subject string
	detail  string // rendered form; authoritative when args == nil
	format  string
	args    []any // non-nil => detail is lazily fmt.Sprintf(format, args...)
}

func (r *record) event() Event {
	d := r.detail
	if r.args != nil {
		d = fmt.Sprintf(r.format, r.args...)
	}
	return Event{Seq: r.seq, Time: r.time, Kind: r.kind, Actor: r.actor, Subject: r.subject, Detail: d}
}

// Log is a concurrency-safe append-only event log. The zero value is
// ready to use. An optional Clock may be injected for deterministic
// tests; it defaults to time.Now.
type Log struct {
	mu     sync.RWMutex
	events []record
	seq    uint64
	clock  func() time.Time
	sink   io.Writer // optional mirror for every event line
}

// New returns an empty log.
func New() *Log { return &Log{} }

// SetClock injects a time source; nil restores time.Now. For tests.
func (l *Log) SetClock(clock func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clock = clock
}

// SetSink mirrors every appended event, rendered by Event.String plus a
// newline, to w. Pass nil to disable. Errors from the sink are ignored:
// auditing must never block the data path.
func (l *Log) SetSink(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = w
}

// Append records an event and returns its sequence number.
func (l *Log) Append(kind Kind, actor, subject, detail string) uint64 {
	return l.append(record{kind: kind, actor: actor, subject: subject, detail: detail})
}

// Appendf is Append with a formatted detail string. The formatting is
// deferred until the event is read (Snapshot, Filter, the sink): the
// mandatory per-request records (flow-allowed, export) thus cost an
// append, not a fmt.Sprintf. Arguments are retained; pass only immutable
// values (labels, capability sets, strings, numbers).
func (l *Log) Appendf(kind Kind, actor, subject, format string, args ...any) uint64 {
	if len(args) == 0 {
		return l.append(record{kind: kind, actor: actor, subject: subject, detail: format})
	}
	return l.append(record{kind: kind, actor: actor, subject: subject, format: format, args: args})
}

func (l *Log) append(r record) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now
	if l.clock != nil {
		now = l.clock
	}
	l.seq++
	r.seq = l.seq
	r.time = now()
	if l.sink != nil {
		// The sink needs the rendered line anyway; render once and store
		// the result so the work is never repeated.
		e := r.event()
		r.detail, r.format, r.args = e.Detail, "", nil
		fmt.Fprintln(l.sink, e.String())
	}
	l.events = append(l.events, r)
	return r.seq
}

// Len reports the number of events recorded.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// Snapshot returns a copy of all events in sequence order.
func (l *Log) Snapshot() []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Event, len(l.events))
	for i := range l.events {
		out[i] = l.events[i].event()
	}
	return out
}

// Since returns a copy of all events with Seq > seq, for incremental
// consumers (the federation log shipper uses this).
func (l *Log) Since(seq uint64) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	// Seq i is stored at index i-1; binary search unnecessary.
	start := int(seq)
	if start > len(l.events) {
		start = len(l.events)
	}
	out := make([]Event, len(l.events)-start)
	for i := range out {
		out[i] = l.events[start+i].event()
	}
	return out
}

// Filter returns the events for which keep returns true, in order.
func (l *Log) Filter(keep func(Event) bool) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for i := range l.events {
		if e := l.events[i].event(); keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// ByKind returns all events of the given kind, in order. The kind test
// runs on the raw records, so only matching events pay lazy-detail
// rendering — a kind query over a large hot-path log stays cheap.
func (l *Log) ByKind(kind Kind) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for i := range l.events {
		if l.events[i].kind == kind {
			out = append(out, l.events[i].event())
		}
	}
	return out
}

// ByActor returns all events with the given actor, in order. Like
// ByKind, non-matching records are skipped before rendering.
func (l *Log) ByActor(actor string) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for i := range l.events {
		if l.events[i].actor == actor {
			out = append(out, l.events[i].event())
		}
	}
	return out
}

// CountKind reports how many events of the given kind were recorded.
func (l *Log) CountKind(kind Kind) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for i := range l.events {
		if l.events[i].kind == kind {
			n++
		}
	}
	return n
}
