// Package audit provides the W5 provider's append-only audit log.
//
// The W5 paper places the burden of correctness on "a very small number
// of components" run by the provider (§1–§2). The audit log is how that
// promise is made inspectable: every privilege grant, every
// declassification, every denied flow, and every policy change is
// recorded with a monotonically increasing sequence number. Entries are
// immutable once appended; the log can be filtered for display (w5ctl
// audit) and is consulted by the security experiments to verify that
// denials happened for the right reason.
//
// # Segmented storage
//
// Audit volume grows with traffic, not with configuration, so retention
// is an architectural feature of this package rather than an operator
// hope. Events append into a fixed-size ACTIVE segment; a full segment
// is SEALED into a bounded in-memory ring, and a background writer
// SPILLS sealed segments to disk in a length-prefixed binary format
// with a per-segment index (spill.go). Steady-state heap is therefore
// O(ring × segment), not O(events ever appended). Sealed segments are
// immutable, which is what makes the read side lock-cheap and the
// spill crash-consistent (a segment file is written once, fsynced, and
// atomically renamed into place — it is either fully there or absent).
//
// Queries (Events, Snapshot, Since, Filter, ByKind, ByActor,
// CountKind) read transparently across the spilled segments, the ring,
// and the active segment via one merged iterator (query.go); callers
// never see the storage tiers.
//
// The zero configuration — audit.New() — keeps the historical
// semantics: an unbounded in-memory log (segments are sealed but never
// evicted), so small tools and tests need no setup and lose nothing.
// Bounding the ring without a spill directory trades completeness for
// memory: the oldest segments are dropped (and counted). Bounding the
// ring WITH a spill directory is the production configuration.
package audit

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an audit event.
type Kind string

// The event kinds recorded by the platform.
const (
	KindTagMint      Kind = "tag-mint"      // a fresh tag was created
	KindGrant        Kind = "grant"         // capabilities delegated
	KindRevoke       Kind = "revoke"        // capabilities revoked
	KindSpawn        Kind = "spawn"         // process created
	KindExit         Kind = "exit"          // process destroyed
	KindFlowAllowed  Kind = "flow-allowed"  // IPC or storage flow permitted
	KindFlowDenied   Kind = "flow-denied"   // IPC or storage flow denied
	KindDrop         Kind = "msg-drop"      // policy-allowed IPC dropped (mailbox full / receiver dead)
	KindExport       Kind = "export"        // data crossed the perimeter
	KindExportDenied Kind = "export-denied" // perimeter crossing denied
	KindDeclassify   Kind = "declassify"    // a declassifier exercised s_u-
	KindPolicyChange Kind = "policy-change" // user edited a policy
	KindQuota        Kind = "quota"         // a quota was exhausted
	KindLogin        Kind = "login"         // session established
	KindUpload       Kind = "upload"        // module uploaded to registry
	KindFederation   Kind = "federation"    // cross-provider sync event
	KindPeerFail     Kind = "peer-fail"     // a federation peer became unreachable
	KindPeerRecover  Kind = "peer-recover"  // a failed federation peer answered again
)

// Event is one immutable audit record.
type Event struct {
	Seq     uint64    // assigned by the log, strictly increasing from 1
	Time    time.Time // wall-clock time of the append
	Kind    Kind
	Actor   string // the principal that acted (user, process, module)
	Subject string // what was acted upon (tag, file, endpoint, user)
	Detail  string // human-readable specifics
}

// String renders a single-line form suitable for terminals.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s %s actor=%s subject=%s %s",
		e.Seq, e.Time.UTC().Format(time.RFC3339), e.Kind, e.Actor, e.Subject, e.Detail)
}

// record is the internal storage form of an event. Hot-path appends
// (flow-allowed, export, spawn/exit — one or more per request) defer the
// fmt.Sprintf of the detail string: format and args are stored raw and
// rendered only when the event is actually read (a query, the sink, or
// the background spiller). Arguments must therefore be immutable or
// by-value (labels, capability sets, strings, numbers) — every call
// site in the platform passes exactly those.
type record struct {
	seq     uint64
	time    time.Time
	kind    Kind
	actor   string
	subject string
	detail  string // rendered form; authoritative when args == nil
	format  string
	args    []any // non-nil => detail is lazily fmt.Sprintf(format, args...)
}

func (r *record) event() Event {
	d := r.detail
	if r.args != nil {
		d = fmt.Sprintf(r.format, r.args...)
	}
	return Event{Seq: r.seq, Time: r.time, Kind: r.kind, Actor: r.actor, Subject: r.subject, Detail: d}
}

// DefaultSegmentSize is the events-per-segment used when Options leaves
// SegmentSize zero.
const DefaultSegmentSize = 1024

// Options configures a Log's segmented retention. The zero value is an
// unbounded in-memory log — the historical audit.New() semantics.
type Options struct {
	// SegmentSize is the number of events per segment (0 =
	// DefaultSegmentSize). Larger segments amortize sealing and produce
	// fewer, bigger spill files.
	SegmentSize int
	// RingSegments bounds how many sealed segments stay in memory.
	// 0 = unbounded: segments are never evicted (and, with a SpillDir,
	// the disk copies exist purely for durability). With a bound, the
	// steady-state heap is (RingSegments+1) × SegmentSize records; the
	// oldest segment is evicted as each new one seals, and an evicted
	// segment that was never spilled is DROPPED (counted in Stats).
	RingSegments int
	// SpillDir, when non-empty, enables the background writer: sealed
	// segments are encoded to length-prefixed binary files (one per
	// segment, atomically renamed into place) under this directory, and
	// queries read evicted segments back from disk transparently.
	// Opening a directory that already holds segment files resumes from
	// them: their events are queryable and sequence numbers continue
	// after the highest spilled sequence.
	SpillDir string
	// RetainSegments bounds how many spilled segment files are kept
	// (0 = unlimited). The oldest files beyond the bound are deleted
	// after each spill; their events are gone (counted in Stats).
	RetainSegments int
	// RetainAge bounds how long a spilled segment is kept, measured
	// against the newest event time in the segment (0 = unlimited).
	RetainAge time.Duration
}

// Log is a concurrency-safe append-only event log. The zero value is
// ready to use (as an unbounded in-memory log). An optional Clock may
// be injected for deterministic tests; it defaults to time.Now.
type Log struct {
	mu      sync.RWMutex
	opts    Options
	segSize int
	seq     uint64
	active  []record   // < segSize records; seqs (seq-len(active), seq]
	ring    []*segment // sealed segments, oldest first, contiguous
	clock   func() time.Time
	sink    io.Writer // optional mirror for every event line
	sp      *spiller  // nil = no disk spill

	sealedSegs uint64 // segments sealed over the log's lifetime (under mu)

	// Updated by the spiller goroutine without holding mu (the append
	// path holds mu while handing segments over, so the spiller taking
	// mu would be a lock-order inversion).
	dropped     atomic.Uint64 // events evicted from the ring before reaching disk
	spilledSegs atomic.Uint64 // segments written to disk over the log's lifetime
	spillErrors atomic.Uint64 // failed spill attempts (segment kept droppable)
	retained    atomic.Uint64 // events deleted from disk by retention
}

// segment is one sealed, immutable run of records. base is the sequence
// number of recs[0]; records within a segment are seq-contiguous.
type segment struct {
	base uint64
	recs []record
	// spillState is one of segSealed/segSpilling/segSpilled/segDropped;
	// see spill.go. Only the spiller and the evictor touch it, via
	// atomic CAS, so a segment racing eviction against an in-flight
	// disk write resolves deterministically.
	spillState atomic.Int32
}

func (s *segment) last() uint64 { return s.base + uint64(len(s.recs)) - 1 }

// New returns an empty, unbounded in-memory log.
func New() *Log {
	l, _ := Open(Options{})
	return l
}

// Open builds a log with the given retention options. It only returns
// an error when a SpillDir cannot be created or its existing segment
// files cannot be scanned; without a SpillDir it cannot fail.
func Open(opts Options) (*Log, error) {
	segSize := opts.SegmentSize
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	l := &Log{
		opts:    opts,
		segSize: segSize,
		active:  make([]record, 0, segSize),
	}
	if opts.SpillDir != "" {
		sp, maxSeq, err := newSpiller(l, opts)
		if err != nil {
			return nil, err
		}
		l.sp = sp
		l.seq = maxSeq // resume numbering after the spilled history
	}
	return l, nil
}

// SetClock injects a time source; nil restores time.Now. For tests.
func (l *Log) SetClock(clock func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clock = clock
}

// now reads the clock outside the append path (the spiller's retention
// check uses it; append reads the field under its own lock).
func (l *Log) now() time.Time {
	l.mu.RLock()
	c := l.clock
	l.mu.RUnlock()
	if c == nil {
		return time.Now()
	}
	return c()
}

// SetSink mirrors every appended event, rendered by Event.String plus a
// newline, to w. Pass nil to disable. Errors from the sink are ignored:
// auditing must never block the data path.
func (l *Log) SetSink(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = w
}

// Append records an event and returns its sequence number.
func (l *Log) Append(kind Kind, actor, subject, detail string) uint64 {
	return l.append(record{kind: kind, actor: actor, subject: subject, detail: detail})
}

// Appendf is Append with a formatted detail string. The formatting is
// deferred until the event is read (a query, the sink, the spiller):
// the mandatory per-request records (flow-allowed, export) thus cost an
// append, not a fmt.Sprintf. Arguments are retained; pass only immutable
// values (labels, capability sets, strings, numbers).
func (l *Log) Appendf(kind Kind, actor, subject, format string, args ...any) uint64 {
	if len(args) == 0 {
		return l.append(record{kind: kind, actor: actor, subject: subject, detail: format})
	}
	return l.append(record{kind: kind, actor: actor, subject: subject, format: format, args: args})
}

func (l *Log) append(r record) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now
	if l.clock != nil {
		now = l.clock
	}
	l.seq++
	r.seq = l.seq
	r.time = now()
	if l.sink != nil {
		// The sink needs the rendered line anyway; render once and store
		// the result so the work is never repeated.
		e := r.event()
		r.detail, r.format, r.args = e.Detail, "", nil
		fmt.Fprintln(l.sink, e.String())
	}
	l.active = append(l.active, r)
	if len(l.active) >= l.segSize {
		l.seal()
	}
	return r.seq
}

// seal moves the active segment into the ring (and hands it to the
// spiller), then evicts past the ring bound. Called with l.mu held.
func (l *Log) seal() {
	if len(l.active) == 0 {
		return
	}
	seg := &segment{base: l.seq - uint64(len(l.active)) + 1, recs: l.active}
	l.active = make([]record, 0, l.segSize)
	l.ring = append(l.ring, seg)
	l.sealedSegs++
	if l.sp != nil {
		l.sp.enqueue(seg)
	}
	if n := l.opts.RingSegments; n > 0 {
		for len(l.ring) > n {
			idx := 0
			old := l.ring[0]
			st := old.spillState.Load()
			if st != segSpilled && !old.spillState.CompareAndSwap(segSealed, segDropped) {
				// The head is mid-write (segSpilling): it stays in the
				// ring until the write resolves, so queries never lose
				// sight of events that are about to be durable — and a
				// FAILED write returns it to the sealed state, still in
				// the ring, where the next eviction counts it as dropped
				// instead of losing it silently. The bound must hold
				// even if that write STALLS (hung NFS, throttled disk),
				// so overflow past the one-segment grace evicts the
				// segment behind the head instead — necessarily
				// unspilled, since the single writer is busy.
				if len(l.ring) <= n+1 {
					break // within the in-flight grace
				}
				idx, old = 1, l.ring[1]
				if !old.spillState.CompareAndSwap(segSealed, segDropped) {
					break // defensive; one writer => ring[1] is sealed
				}
				st = segSealed
			}
			// Copy down instead of re-slicing so the backing array does
			// not pin evicted segments until the next growth.
			l.ring = append(l.ring[:idx], l.ring[idx+1:]...)
			if st != segSpilled {
				// The writer never reached it (no spill configured, or
				// the disk is behind): the CAS above claimed it as
				// dropped, telling the spiller to skip it when dequeued.
				l.dropped.Add(uint64(len(old.recs)))
			}
		}
	}
}

// Rotate seals the partial active segment immediately, making its
// events eligible for spill. Operational use (w5d shutdown, tests);
// the data path never needs it.
func (l *Log) Rotate() {
	l.mu.Lock()
	l.seal()
	l.mu.Unlock()
}

// Flush blocks until every segment sealed so far has been written to
// disk (or skipped as dropped). It is a no-op without a spill
// directory. The active segment is not sealed; call Rotate first to
// force partial data out.
func (l *Log) Flush() {
	l.mu.RLock()
	sp := l.sp
	l.mu.RUnlock()
	if sp != nil {
		sp.wait()
	}
}

// Close seals and spills everything outstanding, stops the background
// writer, and detaches the spill directory (subsequent appends keep
// working, in memory only). Safe to call more than once.
func (l *Log) Close() error {
	l.mu.Lock()
	l.seal()
	sp := l.sp
	l.sp = nil
	l.mu.Unlock()
	if sp != nil {
		sp.shutdown()
	}
	return nil
}

// Stats is a point-in-time summary of the log's storage tiers.
type Stats struct {
	Appended       uint64 // events ever appended (== the last sequence number)
	ActiveEvents   int    // events in the not-yet-sealed active segment
	RingSegments   int    // sealed segments currently in memory
	RingEvents     int    // events across the in-memory ring
	SealedSegments uint64 // segments sealed over the log's lifetime
	SpilledSegs    uint64 // segments written to disk over the log's lifetime
	DiskSegments   int    // segment files currently on disk
	DiskEvents     int    // events across the current disk segments
	DroppedEvents  uint64 // events evicted from the ring before reaching disk
	RetainedOut    uint64 // events deleted from disk by retention
	SpillErrors    uint64 // failed segment writes
}

// Stats snapshots the counters.
func (l *Log) Stats() Stats {
	l.mu.RLock()
	st := Stats{
		Appended:       l.seq,
		ActiveEvents:   len(l.active),
		RingSegments:   len(l.ring),
		SealedSegments: l.sealedSegs,
		SpilledSegs:    l.spilledSegs.Load(),
		DroppedEvents:  l.dropped.Load(),
		RetainedOut:    l.retained.Load(),
		SpillErrors:    l.spillErrors.Load(),
	}
	for _, s := range l.ring {
		st.RingEvents += len(s.recs)
	}
	sp := l.sp
	l.mu.RUnlock()
	if sp != nil {
		for _, ds := range sp.diskSnapshot() {
			st.DiskSegments++
			st.DiskEvents += ds.count
		}
	}
	return st
}

// Len reports the number of events ever recorded (the last sequence
// number); retention and ring eviction do not shrink it.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return int(l.seq)
}
