package audit

// On-disk spill: sealed segments are encoded to one file each in a
// length-prefixed binary format with a per-segment offset index, by a
// single background goroutine, so the append path never touches the
// filesystem.
//
// # File format (version 1)
//
//	header (40 bytes):
//	  [0:4)   magic "w5al"
//	  [4:8)   format version (u32 le) = 1
//	  [8:16)  base sequence number (u64 le)
//	  [16:20) record count (u32 le)
//	  [20:24) reserved (zero)
//	  [24:32) first event time, unix nanos (i64 le)
//	  [32:40) last event time, unix nanos (i64 le)
//	records (count times, seq implicit = base + ordinal):
//	  u32 le: payload length (bytes after this field)
//	  i64 le: event time, unix nanos
//	  u16 le + bytes: kind
//	  u16 le + bytes: actor
//	  u16 le + bytes: subject
//	  u32 le + bytes: detail (rendered — lazy Sprintf is paid here,
//	                  off the data path, at most once per event)
//	index (count × u32 le): file offset of each record, so a query
//	  starting mid-segment (Since, Events(from)) seeks straight to its
//	  first record instead of skipping over the prefix
//	footer (16 bytes): index offset (u64 le), count (u32 le),
//	  magic "w5ix"
//
// # Crash consistency
//
// A segment is encoded into a temp file in the spill directory, fsynced,
// and renamed to its final name ("seg-<base>.w5log", base zero-padded
// decimal so lexical order is sequence order). Rename is atomic on
// POSIX, so after a crash every segment file is either complete and
// valid or still a *.tmp (ignored and deleted on reopen). Events in the
// active segment and sealed-but-unspilled ring at crash time are lost —
// the log trades them for a data path that never blocks on disk.
// Reopening a spill directory resumes sequence numbering after the
// highest spilled sequence, so surviving events keep unique seqs.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Segment spill states (segment.spillState).
const (
	segSealed   = int32(iota) // in the ring, not yet written
	segSpilling               // the writer is encoding it now
	segSpilled                // safely on disk
	segDropped                // evicted before the writer reached it
)

const (
	segMagic   = "w5al"
	idxMagic   = "w5ix"
	segVersion = 1
	headerSize = 40
	footerSize = 16
	segPrefix  = "seg-"
	segSuffix  = ".w5log"
)

// diskSeg is the in-memory metadata for one spilled segment file.
type diskSeg struct {
	path  string
	base  uint64
	count int
	last  int64 // newest event time (unix nanos) — retention key
}

// spiller owns the spill directory: the work queue, the background
// writer, and the metadata list of segments currently on disk.
type spiller struct {
	l   *Log
	dir string

	mu      sync.Mutex
	queue   []*segment // sealed segments awaiting the writer
	segs    []diskSeg  // on disk, ascending base
	pending int        // sealed-not-yet-processed count (Flush waits on it)
	done    *sync.Cond // signalled when pending reaches zero

	notify chan struct{} // kicked on enqueue (capacity 1)
	stop   chan struct{}
	exited chan struct{}
}

// newSpiller creates the directory if needed, scans any existing
// segment files (removing stale *.tmp leftovers), prunes them per the
// retention options, starts the writer, and reports the highest
// sequence number found so the log can resume numbering after it.
func newSpiller(l *Log, opts Options) (*spiller, uint64, error) {
	if err := os.MkdirAll(opts.SpillDir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("audit: spill dir: %w", err)
	}
	sp := &spiller{
		l:      l,
		dir:    opts.SpillDir,
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		exited: make(chan struct{}),
	}
	sp.done = sync.NewCond(&sp.mu)
	maxSeq, err := sp.load()
	if err != nil {
		return nil, 0, err
	}
	now := l.now()
	sp.mu.Lock()
	sp.prune(now)
	sp.mu.Unlock()
	go sp.run()
	return sp, maxSeq, nil
}

// load scans the directory for valid segment files.
func (sp *spiller) load() (uint64, error) {
	entries, err := os.ReadDir(sp.dir)
	if err != nil {
		return 0, fmt.Errorf("audit: scanning spill dir: %w", err)
	}
	var maxSeq uint64
	for _, ent := range entries {
		name := ent.Name()
		full := filepath.Join(sp.dir, name)
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(full) // interrupted spill; the rename never happened
			continue
		}
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		ds, err := readSegMeta(full)
		if err != nil {
			// A file that fails validation is not one of ours (or is
			// damaged past use); leave it alone but do not index it.
			continue
		}
		sp.segs = append(sp.segs, ds)
		if last := ds.base + uint64(ds.count) - 1; last > maxSeq {
			maxSeq = last
		}
	}
	sort.Slice(sp.segs, func(i, j int) bool { return sp.segs[i].base < sp.segs[j].base })
	return maxSeq, nil
}

// enqueue hands a freshly sealed segment to the writer. Called with
// l.mu held; must never block (the audit contract: appending cannot
// stall the data path, no matter how far behind the disk is).
func (sp *spiller) enqueue(seg *segment) {
	sp.mu.Lock()
	if bound := sp.l.opts.RingSegments; bound > 0 && len(sp.queue) > bound {
		// The writer is more than a full ring behind (a stalled disk):
		// queueing more would pin ring-evicted segments' records in
		// memory without bound — the exact failure this package
		// removes. Leave the segment un-queued; it stays queryable in
		// the ring and, if evicted before the disk recovers, is
		// counted dropped like any other unspilled eviction.
		sp.mu.Unlock()
		return
	}
	sp.queue = append(sp.queue, seg)
	sp.pending++
	sp.mu.Unlock()
	select {
	case sp.notify <- struct{}{}:
	default:
	}
}

// dequeue pops the oldest queued segment, or nil.
func (sp *spiller) dequeue() *segment {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.queue) == 0 {
		return nil
	}
	seg := sp.queue[0]
	sp.queue = append(sp.queue[:0], sp.queue[1:]...)
	return seg
}

// run is the background writer loop.
func (sp *spiller) run() {
	defer close(sp.exited)
	for {
		seg := sp.dequeue()
		if seg == nil {
			select {
			case <-sp.notify:
				continue
			case <-sp.stop:
				sp.drain()
				return
			}
		}
		sp.process(seg)
	}
}

// drain spills whatever is still queued (shutdown path).
func (sp *spiller) drain() {
	for seg := sp.dequeue(); seg != nil; seg = sp.dequeue() {
		sp.process(seg)
	}
}

// process writes one segment (unless eviction already dropped it),
// applies retention, and releases Flush waiters.
func (sp *spiller) process(seg *segment) {
	if seg.spillState.CompareAndSwap(segSealed, segSpilling) {
		if err := sp.write(seg); err != nil {
			// The segment stays evictable-as-dropped; the failure is
			// counted, never propagated into the data path.
			seg.spillState.Store(segSealed)
			sp.l.spillErrors.Add(1)
		} else {
			seg.spillState.Store(segSpilled)
			sp.l.spilledSegs.Add(1)
		}
	}
	now := sp.l.now()
	sp.mu.Lock()
	sp.prune(now)
	sp.pending--
	if sp.pending == 0 {
		sp.done.Broadcast()
	}
	sp.mu.Unlock()
}

// write encodes seg and renames it into place.
func (sp *spiller) write(seg *segment) error {
	buf := encodeSegment(seg)
	f, err := os.CreateTemp(sp.dir, segPrefix+"*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	final := filepath.Join(sp.dir, fmt.Sprintf("%s%020d%s", segPrefix, seg.base, segSuffix))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	var last int64
	if n := len(seg.recs); n > 0 {
		last = seg.recs[n-1].time.UnixNano()
	}
	sp.mu.Lock()
	sp.segs = append(sp.segs, diskSeg{path: final, base: seg.base, count: len(seg.recs), last: last})
	// Appends are in base order except across a reopen boundary, where
	// a resumed log's first spill can interleave with nothing — keep
	// the invariant explicit anyway.
	sort.Slice(sp.segs, func(i, j int) bool { return sp.segs[i].base < sp.segs[j].base })
	sp.mu.Unlock()
	return nil
}

// prune applies the retention bounds, oldest segment first. Called with
// sp.mu held.
func (sp *spiller) prune(now time.Time) {
	maxSegs := sp.l.opts.RetainSegments
	maxAge := sp.l.opts.RetainAge
	cut := 0
	for i, ds := range sp.segs {
		over := maxSegs > 0 && len(sp.segs)-i > maxSegs
		old := maxAge > 0 && now.Sub(time.Unix(0, ds.last)) > maxAge
		if !over && !old {
			break // segs are in base order; newer segments are newer data
		}
		cut = i + 1
	}
	if cut == 0 {
		return
	}
	var gone uint64
	for _, ds := range sp.segs[:cut] {
		os.Remove(ds.path)
		gone += uint64(ds.count)
	}
	sp.segs = append(sp.segs[:0], sp.segs[cut:]...)
	sp.l.retained.Add(gone)
}

// wait blocks until the writer has processed everything sealed so far.
func (sp *spiller) wait() {
	sp.mu.Lock()
	for sp.pending > 0 {
		sp.done.Wait()
	}
	sp.mu.Unlock()
}

// shutdown stops the writer after draining the queue.
func (sp *spiller) shutdown() {
	close(sp.stop)
	<-sp.exited
	// run() exits only after drain(), but a segment handed to process()
	// just before stop may still be mid-flight — wait() covers it.
	sp.wait()
}

// diskSnapshot copies the current on-disk metadata (for queries/Stats).
func (sp *spiller) diskSnapshot() []diskSeg {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return append([]diskSeg(nil), sp.segs...)
}

// --- encoding ---

func appendU16Str(buf []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff] // kinds/actors/subjects are short by construction
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// encodeSegment renders every record (paying any deferred Sprintf here,
// in the background) and produces the full file image.
func encodeSegment(seg *segment) []byte {
	n := len(seg.recs)
	// Rough size guess: header + 64 bytes/record + index + footer.
	buf := make([]byte, headerSize, headerSize+n*64+n*4+footerSize)
	offsets := make([]uint32, n)
	for i := range seg.recs {
		e := seg.recs[i].event()
		offsets[i] = uint32(len(buf))
		lenAt := len(buf)
		buf = binary.LittleEndian.AppendUint32(buf, 0) // payload length, patched below
		start := len(buf)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Time.UnixNano()))
		buf = appendU16Str(buf, string(e.Kind))
		buf = appendU16Str(buf, e.Actor)
		buf = appendU16Str(buf, e.Subject)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Detail)))
		buf = append(buf, e.Detail...)
		binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-start))
	}
	idxOff := uint64(len(buf))
	for _, off := range offsets {
		buf = binary.LittleEndian.AppendUint32(buf, off)
	}
	buf = binary.LittleEndian.AppendUint64(buf, idxOff)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, idxMagic...)

	copy(buf[0:4], segMagic)
	binary.LittleEndian.PutUint32(buf[4:8], segVersion)
	binary.LittleEndian.PutUint64(buf[8:16], seg.base)
	binary.LittleEndian.PutUint32(buf[16:20], uint32(n))
	var first, last int64
	if n > 0 {
		first = seg.recs[0].time.UnixNano()
		last = seg.recs[n-1].time.UnixNano()
	}
	binary.LittleEndian.PutUint64(buf[24:32], uint64(first))
	binary.LittleEndian.PutUint64(buf[32:40], uint64(last))
	return buf
}

var errBadSegment = errors.New("audit: segment file failed validation")

// validateSegImage checks the structural invariants of a segment image.
func validateSegImage(buf []byte) (base uint64, count int, idxOff uint64, err error) {
	if len(buf) < headerSize+footerSize ||
		string(buf[0:4]) != segMagic ||
		binary.LittleEndian.Uint32(buf[4:8]) != segVersion ||
		string(buf[len(buf)-4:]) != idxMagic {
		return 0, 0, 0, errBadSegment
	}
	base = binary.LittleEndian.Uint64(buf[8:16])
	count = int(binary.LittleEndian.Uint32(buf[16:20]))
	foot := buf[len(buf)-footerSize:]
	idxOff = binary.LittleEndian.Uint64(foot[0:8])
	if int(binary.LittleEndian.Uint32(foot[8:12])) != count ||
		idxOff < headerSize || idxOff+uint64(count)*4+footerSize != uint64(len(buf)) {
		return 0, 0, 0, errBadSegment
	}
	return base, count, idxOff, nil
}

// readSegMeta validates a file's framing and extracts its metadata
// (reopen path). It reads only the fixed header and footer — reopening
// a directory of spilled history costs O(files), not O(bytes);
// record-level validation happens lazily when a query reads the
// segment (readDiskSegment).
func readSegMeta(path string) (diskSeg, error) {
	f, err := os.Open(path)
	if err != nil {
		return diskSeg{}, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return diskSeg{}, err
	}
	size := fi.Size()
	if size < headerSize+footerSize {
		return diskSeg{}, errBadSegment
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return diskSeg{}, err
	}
	var foot [footerSize]byte
	if _, err := f.ReadAt(foot[:], size-footerSize); err != nil {
		return diskSeg{}, err
	}
	if string(hdr[0:4]) != segMagic ||
		binary.LittleEndian.Uint32(hdr[4:8]) != segVersion ||
		string(foot[12:16]) != idxMagic {
		return diskSeg{}, errBadSegment
	}
	base := binary.LittleEndian.Uint64(hdr[8:16])
	count := int(binary.LittleEndian.Uint32(hdr[16:20]))
	idxOff := binary.LittleEndian.Uint64(foot[0:8])
	if int(binary.LittleEndian.Uint32(foot[8:12])) != count ||
		idxOff < headerSize || idxOff+uint64(count)*4+footerSize != uint64(size) {
		return diskSeg{}, errBadSegment
	}
	return diskSeg{
		path:  path,
		base:  base,
		count: count,
		last:  int64(binary.LittleEndian.Uint64(hdr[32:40])),
	}, nil
}

// readDiskSegment streams the events of one spilled segment, starting
// at sequence number from (using the per-segment index to skip the
// prefix), through the yield of iterate (query.go). A file deleted by
// retention between snapshot and read is treated as empty. Returns
// false when the consumer stopped the iteration.
func readDiskSegment(ds diskSeg, from uint64, f rawFilter, yield func(Event) bool) (bool, error) {
	buf, err := os.ReadFile(ds.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return true, nil
		}
		return false, err
	}
	base, count, idxOff, err := validateSegImage(buf)
	if err != nil {
		return false, fmt.Errorf("%s: %w", ds.path, err)
	}
	start := 0
	if from > base {
		start = int(from - base)
		if start >= count {
			return true, nil
		}
	}
	// The index maps ordinal -> record offset: one seek instead of
	// skipping start length-prefixed records.
	idx := buf[idxOff : idxOff+uint64(count)*4]
	off := int(binary.LittleEndian.Uint32(idx[start*4:]))
	for i := start; i < count; i++ {
		if off+4 > len(buf) {
			return false, fmt.Errorf("%s: %w", ds.path, errBadSegment)
		}
		plen := int(binary.LittleEndian.Uint32(buf[off:]))
		body := off + 4
		if body+plen > int(idxOff) {
			return false, fmt.Errorf("%s: %w", ds.path, errBadSegment)
		}
		e, err := decodeRecord(buf[body:body+plen], base+uint64(i))
		if err != nil {
			return false, fmt.Errorf("%s: %w", ds.path, err)
		}
		off = body + plen
		if !f.match(e.Kind, e.Actor) {
			continue
		}
		if !yield(e) {
			return false, nil
		}
	}
	return true, nil
}

// decodeRecord decodes one record payload (everything after its length
// prefix).
func decodeRecord(b []byte, seq uint64) (Event, error) {
	var e Event
	e.Seq = seq
	if len(b) < 8 {
		return e, errBadSegment
	}
	e.Time = time.Unix(0, int64(binary.LittleEndian.Uint64(b)))
	b = b[8:]
	str16 := func() (string, bool) {
		if len(b) < 2 {
			return "", false
		}
		n := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if len(b) < n {
			return "", false
		}
		s := string(b[:n])
		b = b[n:]
		return s, true
	}
	kind, ok1 := str16()
	actor, ok2 := str16()
	subject, ok3 := str16()
	if !ok1 || !ok2 || !ok3 || len(b) < 4 {
		return e, errBadSegment
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) < n {
		return e, errBadSegment
	}
	e.Kind, e.Actor, e.Subject, e.Detail = Kind(kind), actor, subject, string(b[:n])
	return e, nil
}
