package audit

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// openT fails the test on error; most configurations cannot fail.
func openT(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%+v): %v", opts, err)
	}
	return l
}

// kindAt is the deterministic kind pattern appendN/appendFlushed use,
// so tests can predict per-kind counts.
func kindAt(i int) Kind {
	return []Kind{KindFlowAllowed, KindExport, KindGrant}[i%3]
}

// appendN appends n distinct events so ordering and content bugs are
// distinguishable.
func appendN(l *Log, n int) {
	for i := 0; i < n; i++ {
		l.Appendf(kindAt(i), "app:bench", "subj", "event %d", i)
	}
}

// appendFlushed appends n events, flushing after every completed
// segment. The flush barrier makes tests deterministic: eviction then
// always finds the oldest ring segment already spilled, so nothing is
// dropped no matter how the spiller goroutine is scheduled.
func appendFlushed(l *Log, segSize, n int) {
	for i := 0; i < n; i++ {
		l.Appendf(kindAt(i), "app:bench", "subj", "event %d", i)
		if (i+1)%segSize == 0 {
			l.Flush()
		}
	}
}

// checkDense verifies evs covers seqs [from, to] exactly, in order.
func checkDense(t *testing.T, evs []Event, from, to uint64) {
	t.Helper()
	if len(evs) != int(to-from+1) {
		t.Fatalf("got %d events, want seqs %d..%d (%d)", len(evs), from, to, to-from+1)
	}
	for i, e := range evs {
		if e.Seq != from+uint64(i) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, from+uint64(i))
		}
	}
}

func TestSealingPreservesQueries(t *testing.T) {
	l := openT(t, Options{SegmentSize: 16}) // unbounded ring
	appendN(l, 100)                         // 6 sealed segments + 4 active
	st := l.Stats()
	if st.SealedSegments != 6 || st.ActiveEvents != 4 || st.RingSegments != 6 {
		t.Errorf("stats = %+v, want 6 sealed / 4 active", st)
	}
	checkDense(t, l.Snapshot(), 1, 100)
	checkDense(t, l.Since(97), 98, 100)
	if n := l.CountKind(KindFlowAllowed); n != 34 {
		t.Errorf("CountKind = %d, want 34", n)
	}
	if d := l.Snapshot()[30].Detail; d != "event 30" {
		t.Errorf("Detail = %q, want \"event 30\"", d)
	}
}

func TestBoundedRingDropsWithoutSpill(t *testing.T) {
	l := openT(t, Options{SegmentSize: 10, RingSegments: 3})
	appendN(l, 95) // 9 sealed, 6 dropped; ring holds 61..90, active 91..95
	st := l.Stats()
	if st.DroppedEvents != 60 {
		t.Errorf("DroppedEvents = %d, want 60", st.DroppedEvents)
	}
	if l.Len() != 95 {
		t.Errorf("Len = %d, want 95 (Len counts appends, not retention)", l.Len())
	}
	checkDense(t, l.Snapshot(), 61, 95)
}

func TestSpillQueriesAcrossAllTiers(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{SegmentSize: 10, RingSegments: 2, SpillDir: dir})
	appendFlushed(l, 10, 75) // 7 sealed: 5 evicted to disk-only, 2 in ring, 5 active
	l.Flush()
	st := l.Stats()
	if st.DroppedEvents != 0 {
		t.Fatalf("DroppedEvents = %d, want 0 (flush barrier)", st.DroppedEvents)
	}
	if st.SpilledSegs != 7 || st.DiskSegments != 7 {
		t.Errorf("spilled/disk segments = %d/%d, want 7/7", st.SpilledSegs, st.DiskSegments)
	}
	if st.RingSegments != 2 || st.ActiveEvents != 5 {
		t.Errorf("ring/active = %d/%d, want 2/5", st.RingSegments, st.ActiveEvents)
	}
	// The merged iterator must cross disk -> ring -> active seamlessly.
	checkDense(t, l.Snapshot(), 1, 75)
	checkDense(t, l.Since(3), 4, 75)   // starts mid-disk-segment (index path)
	checkDense(t, l.Since(52), 53, 75) // starts in the ring
	checkDense(t, l.Since(71), 72, 75) // active only
	if n := l.CountKind(KindExport); n != 25 {
		t.Errorf("CountKind across tiers = %d, want 25", n)
	}
	if d := l.Snapshot()[2].Detail; d != "event 2" {
		t.Errorf("disk-tier Detail = %q, want \"event 2\"", d)
	}
	var stopped []Event
	if err := l.Events(1, func(e Event) bool {
		stopped = append(stopped, e)
		return len(stopped) < 7
	}); err != nil {
		t.Errorf("Events: %v", err)
	}
	checkDense(t, stopped, 1, 7)
	l.Close()
}

func TestCrashReplayReopen(t *testing.T) {
	dir := t.TempDir()
	fixed := time.Date(2007, 8, 24, 12, 0, 0, 0, time.UTC)
	l := openT(t, Options{SegmentSize: 8, SpillDir: dir}) // unbounded ring
	l.SetClock(func() time.Time { return fixed })
	appendN(l, 60)
	l.Rotate() // seal the partial tail so all 60 events reach disk
	l.Flush()
	l.Append(KindLogin, "bob", "session", "doomed") // active at crash: lost
	// Crash: no Close. Drop the handle and reopen the directory cold.
	reopened := openT(t, Options{SegmentSize: 8, SpillDir: dir})
	defer reopened.Close()
	st := reopened.Stats()
	if st.DiskSegments != 8 || st.DiskEvents != 60 {
		t.Fatalf("reopened disk = %d segments / %d events, want 8/60", st.DiskSegments, st.DiskEvents)
	}
	checkDense(t, reopened.Snapshot(), 1, 60)
	e := reopened.Snapshot()[12]
	if e.Kind != kindAt(12) || e.Actor != "app:bench" || e.Detail != "event 12" || !e.Time.Equal(fixed) {
		t.Errorf("replayed event corrupted: %+v", e)
	}
	checkDense(t, reopened.Since(42), 43, 60) // mid-segment start, via the index
	// Sequence numbering resumes after the spilled history.
	if seq := reopened.Append(KindLogin, "bob", "session", "back"); seq != 61 {
		t.Errorf("first post-reopen seq = %d, want 61", seq)
	}
	checkDense(t, reopened.Snapshot(), 1, 61)
}

func TestReopenIgnoresTmpAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{SegmentSize: 4, SpillDir: dir})
	appendN(l, 8)
	l.Close()
	// Crash leftovers and stray files must not confuse (or join) the log.
	os.WriteFile(filepath.Join(dir, segPrefix+"xyz.tmp"), []byte("partial"), 0o644)
	os.WriteFile(filepath.Join(dir, "seg-00000000000000000099.w5log"), []byte("garbage"), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644)
	reopened := openT(t, Options{SegmentSize: 4, SpillDir: dir})
	defer reopened.Close()
	checkDense(t, reopened.Snapshot(), 1, 8)
	if _, err := os.Stat(filepath.Join(dir, segPrefix+"xyz.tmp")); !os.IsNotExist(err) {
		t.Error("stale .tmp not removed on reopen")
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Error("foreign file must be left alone")
	}
}

func TestCloseSpillsEverything(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{SegmentSize: 16, SpillDir: dir})
	appendN(l, 21) // one sealed segment + 5 active
	l.Close()
	reopened := openT(t, Options{SegmentSize: 16, SpillDir: dir})
	defer reopened.Close()
	checkDense(t, reopened.Snapshot(), 1, 21)
	// Appending after Close still works (memory-only).
	l.Append(KindLogin, "bob", "s", "")
	if l.Len() != 22 {
		t.Errorf("post-Close Len = %d, want 22", l.Len())
	}
}

func TestRetentionBySegmentCount(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{SegmentSize: 10, RingSegments: 1, SpillDir: dir, RetainSegments: 3})
	appendFlushed(l, 10, 100) // 10 segments sealed and spilled
	l.Flush()
	st := l.Stats()
	if st.DiskSegments > 3 {
		t.Errorf("DiskSegments = %d, want <= 3", st.DiskSegments)
	}
	if st.RetainedOut == 0 {
		t.Error("RetainedOut = 0, want > 0 (retention deleted events)")
	}
	files, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(files) != st.DiskSegments {
		t.Errorf("files on disk = %d, metadata says %d", len(files), st.DiskSegments)
	}
	// Oldest events are gone; the surviving suffix is dense up to now.
	evs := l.Snapshot()
	if evs[len(evs)-1].Seq != 100 {
		t.Fatalf("newest seq = %d, want 100", evs[len(evs)-1].Seq)
	}
	checkDense(t, evs, evs[0].Seq, 100)
	if evs[0].Seq <= 60 {
		t.Errorf("oldest retained seq = %d, want > 60 (3 disk segments + ring + active)", evs[0].Seq)
	}
	l.Close()
}

func TestRetentionByAge(t *testing.T) {
	dir := t.TempDir()
	// A fixed instant safely in the past, so the final reopen (which
	// prunes against the real clock) sees every segment as stale.
	now := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	l := openT(t, Options{SegmentSize: 10, RingSegments: 1, SpillDir: dir, RetainAge: time.Hour})
	l.SetClock(func() time.Time { return now })
	appendFlushed(l, 10, 30)
	l.Flush()
	if st := l.Stats(); st.DiskSegments != 3 {
		t.Fatalf("DiskSegments = %d, want 3", st.DiskSegments)
	}
	now = now.Add(2 * time.Hour) // everything spilled so far is now stale
	appendFlushed(l, 10, 20)     // fresh segments; their spills trigger pruning
	l.Flush()
	st := l.Stats()
	if st.DiskSegments != 2 {
		t.Errorf("DiskSegments = %d, want 2 (stale segments pruned)", st.DiskSegments)
	}
	if st.RetainedOut != 30 {
		t.Errorf("RetainedOut = %d, want 30", st.RetainedOut)
	}
	l.Close()
	// Reopen also prunes: a cold Open applies retention before serving.
	reopened, err := Open(Options{SegmentSize: 10, SpillDir: dir, RetainAge: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if st := reopened.Stats(); st.DiskSegments != 0 {
		t.Errorf("reopen DiskSegments = %d, want 0 (all aged out)", st.DiskSegments)
	}
}

func TestSinkMirrorsAcrossSealing(t *testing.T) {
	var sb strings.Builder
	l := openT(t, Options{SegmentSize: 4})
	l.SetSink(&sb)
	appendN(l, 10)
	if n := strings.Count(sb.String(), "\n"); n != 10 {
		t.Errorf("sink lines = %d, want 10", n)
	}
}

// TestConcurrentAppendSealQuery hammers append/seal/spill/query/Stats
// concurrently; under -race this audits the snapshot discipline
// (immutable sealed segments, stable active prefix, atomic counters).
func TestConcurrentAppendSealQuery(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{SegmentSize: 64, SpillDir: dir}) // unbounded ring: nothing may be lost
	const appenders, per = 8, 500
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var prev uint64
				if err := l.Events(uint64(g*100), func(e Event) bool {
					if e.Seq <= prev && prev != 0 {
						t.Errorf("out-of-order seq %d after %d", e.Seq, prev)
						return false
					}
					prev = e.Seq
					return true
				}); err != nil {
					t.Errorf("Events: %v", err)
				}
				l.CountKind(KindExport)
				l.Stats()
			}
		}(g)
	}
	var writers sync.WaitGroup
	for g := 0; g < appenders; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < per; i++ {
				l.Appendf(KindExport, "gw", "u", "n=%d", i)
				if i%100 == 0 {
					l.Rotate()
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	l.Flush()
	checkDense(t, l.Snapshot(), 1, appenders*per)
	l.Close()
}

// TestBoundedConcurrentStress: the production shape (bounded ring +
// spill + retention) under concurrent load; asserts the invariants that
// hold even when the spiller races eviction, rather than exact counts.
func TestBoundedConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{SegmentSize: 32, RingSegments: 4, SpillDir: dir, RetainSegments: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Append(KindFlowAllowed, "p", "q", "x")
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var prev uint64
				l.Events(0, func(e Event) bool {
					if e.Seq <= prev && prev != 0 {
						t.Errorf("out-of-order seq %d after %d", e.Seq, prev)
						return false
					}
					prev = e.Seq
					return true
				})
			}
		}()
	}
	wg.Wait()
	l.Flush()
	st := l.Stats()
	if st.Appended != 16000 {
		t.Fatalf("Appended = %d, want 16000", st.Appended)
	}
	if st.RingSegments > 4 {
		t.Errorf("RingSegments = %d, want <= 4", st.RingSegments)
	}
	if st.DiskSegments > 8 {
		t.Errorf("DiskSegments = %d, want <= 8 (retention)", st.DiskSegments)
	}
	l.Close()
}

// TestWarmAppendAllocationFree pins the data-path contract: an append
// that does not seal a segment performs zero heap allocations (the
// active segment is preallocated; sealing costs one array per
// SegmentSize events, amortized away).
func TestWarmAppendAllocationFree(t *testing.T) {
	l := openT(t, Options{SegmentSize: 8192, RingSegments: 4})
	if n := testing.AllocsPerRun(1000, func() {
		l.Append(KindFlowAllowed, "app:x", "/home/u/doc", "ok")
	}); n != 0 {
		t.Errorf("warm Append allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		l.Appendf(KindExport, "gw", "viewer:u", "static detail")
	}); n != 0 {
		t.Errorf("warm no-arg Appendf allocates %.1f/op, want 0", n)
	}
}

// TestSteadyStateBoundedHeap is the acceptance check for the tentpole:
// one million audited events through the production configuration must
// leave the heap bounded by the ring, not by event count. The unbounded
// seed log held all 1M records live (~150 MB with detail strings); the
// segmented log holds ring+active+spill-queue only.
func TestSteadyStateBoundedHeap(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{SegmentSize: 4096, RingSegments: 8, SpillDir: dir, RetainSegments: 16})
	defer l.Close()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const events = 1_000_000
	for i := 0; i < events; i++ {
		l.Appendf(KindFlowAllowed, "app:social", "/home/u/private/doc", "flow %d", i)
	}
	l.Flush()
	runtime.GC()
	runtime.ReadMemStats(&after)
	if l.Len() != events {
		t.Fatalf("Len = %d, want %d", l.Len(), events)
	}
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	// Ring bound: 9 segments x 4096 records x ~150 B ≈ 5.5 MB. Allow
	// generous slack for the spill queue and allocator noise; the
	// unbounded log measures >150 MB on this workload.
	const limit = 48 << 20
	if growth > limit {
		t.Errorf("heap grew %d MB over 1M events, want < %d MB (ring-bounded)",
			growth>>20, limit>>20)
	}
	if st := l.Stats(); st.DroppedEvents != 0 {
		t.Logf("note: %d events dropped (spiller fell behind); bound still held", st.DroppedEvents)
	}
}

// TestSteadyStateAppendFlat splits a 1M-event run into quarters and
// requires the slowest quarter within 3x of the fastest: the unbounded
// seed log degraded 2-4x within a run from heap growth alone (measured
// in PR 2), monotonically — a bounded log shows only scheduler noise.
func TestSteadyStateAppendFlat(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{SegmentSize: 4096, RingSegments: 8, SpillDir: dir, RetainSegments: 16})
	defer l.Close()
	const quarters, perQuarter = 4, 250_000
	var q [quarters]time.Duration
	for qi := 0; qi < quarters; qi++ {
		start := time.Now()
		for i := 0; i < perQuarter; i++ {
			l.Append(KindFlowAllowed, "app:social", "/home/u/private/doc", "ok")
		}
		q[qi] = time.Since(start)
	}
	min, max := q[0], q[0]
	for _, d := range q[1:] {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	t.Logf("quarter times: %v (max/min %.2fx)", q, float64(max)/float64(min))
	if float64(max) > 3*float64(min) {
		t.Errorf("append rate degraded within the run: quarters %v", q)
	}
}

// TestRingBoundHeldWhenSpillFails breaks the spill directory out from
// under the writer and verifies the memory contract survives: the ring
// stays at its bound (+ the single in-flight grace segment), failed
// writes are counted, and evicted-unspilled events are counted dropped
// rather than silently lost.
func TestRingBoundHeldWhenSpillFails(t *testing.T) {
	dir := t.TempDir()
	spill := filepath.Join(dir, "audit")
	l := openT(t, Options{SegmentSize: 8, RingSegments: 2, SpillDir: spill})
	if err := os.RemoveAll(spill); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spill, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	appendN(l, 8) // seal exactly one segment...
	l.Flush()     // ...and make the writer attempt (and fail) its spill
	if st := l.Stats(); st.SpillErrors == 0 {
		t.Fatal("SpillErrors = 0 after a forced failed spill")
	}
	appendN(l, 192) // 24 more segments at full tilt; writes keep failing
	l.Flush()
	st := l.Stats()
	if st.RingSegments > 3 {
		t.Errorf("RingSegments = %d, want <= 3 (bound + in-flight grace)", st.RingSegments)
	}
	if st.DroppedEvents == 0 {
		t.Error("DroppedEvents = 0, want > 0 (failed spills count as dropped on eviction)")
	}
	// What is retained is still ordered and current up to the newest
	// append (interior gaps are allowed: eviction may skip past a
	// segment pinned mid-write).
	evs := l.Snapshot()
	if len(evs) == 0 || evs[len(evs)-1].Seq != 200 {
		t.Fatalf("retained tail ends at %v, want 200", evs[len(evs)-1].Seq)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("out of order: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	l.Close()
}

func TestEventsReportsDiskErrorsButServesReadableTiers(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{SegmentSize: 4, RingSegments: 1, SpillDir: dir})
	appendFlushed(l, 4, 16) // 4 segments spilled; 3 evicted to disk-only
	l.Flush()
	files, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(files) != 4 {
		t.Fatalf("spill files = %d, want 4", len(files))
	}
	// Truncate the oldest (evicted) segment behind the log's back.
	if err := os.Truncate(files[0], 10); err != nil {
		t.Fatal(err)
	}
	if err := l.Events(0, func(Event) bool { return true }); err == nil {
		t.Error("Events over a corrupted spill file returned nil error")
	}
	// Best-effort queries skip the damaged segment, serve the rest.
	checkDense(t, l.Snapshot(), 5, 16)
	l.Close()
}

func BenchmarkAuditAppend(b *testing.B) {
	l, err := Open(Options{SegmentSize: 4096, RingSegments: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(KindFlowAllowed, "app:bench", "/home/u/doc", "ok")
	}
}

func BenchmarkAuditAppendSpill(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Options{SegmentSize: 4096, RingSegments: 16, SpillDir: dir, RetainSegments: 32})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Appendf(KindExport, "gateway", "viewer:u", "%d bytes", 1024)
	}
	b.StopTimer()
	l.Flush()
}

func BenchmarkAuditQueryByKind(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Options{SegmentSize: 1024, RingSegments: 4, SpillDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 50_000; i++ {
		kind := KindFlowAllowed
		if i%100 == 0 {
			kind = KindExportDenied
		}
		l.Appendf(kind, "app:bench", "subj", "event %d", i)
		if (i+1)%1024 == 0 {
			l.Flush() // keep eviction behind the spiller: no drops
		}
	}
	l.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := l.CountKind(KindExportDenied); n != 500 {
			b.Fatalf("CountKind = %d, want 500", n)
		}
	}
}
