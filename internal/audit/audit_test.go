package audit

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAppendAssignsSequence(t *testing.T) {
	l := New()
	for i := 1; i <= 5; i++ {
		seq := l.Append(KindGrant, "alice", "t1", "grant t1-")
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if l.Len() != 5 {
		t.Errorf("Len = %d, want 5", l.Len())
	}
	evs := l.Snapshot()
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	l := New()
	l.Append(KindSpawn, "kernel", "p1", "")
	s := l.Snapshot()
	s[0].Actor = "mallory"
	if l.Snapshot()[0].Actor != "kernel" {
		t.Error("snapshot aliases internal storage")
	}
}

func TestSince(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.Append(KindFlowAllowed, "p", "q", "")
	}
	got := l.Since(7)
	if len(got) != 3 {
		t.Fatalf("Since(7) returned %d events, want 3", len(got))
	}
	if got[0].Seq != 8 {
		t.Errorf("first event seq = %d, want 8", got[0].Seq)
	}
	if len(l.Since(10)) != 0 {
		t.Error("Since(last) not empty")
	}
	if len(l.Since(99)) != 0 {
		t.Error("Since(beyond) not empty")
	}
	if len(l.Since(^uint64(0))) != 0 {
		t.Error("Since(MaxUint64) must not wrap around to the start")
	}
	if len(l.Since(0)) != 10 {
		t.Error("Since(0) should return everything")
	}
}

func TestFilterByKindAndActor(t *testing.T) {
	l := New()
	l.Append(KindGrant, "alice", "t1", "")
	l.Append(KindFlowDenied, "mallory", "t1", "")
	l.Append(KindGrant, "bob", "t2", "")
	l.Append(KindFlowDenied, "mallory", "t2", "")

	if n := len(l.ByKind(KindGrant)); n != 2 {
		t.Errorf("ByKind(grant) = %d, want 2", n)
	}
	if n := len(l.ByActor("mallory")); n != 2 {
		t.Errorf("ByActor(mallory) = %d, want 2", n)
	}
	if n := l.CountKind(KindFlowDenied); n != 2 {
		t.Errorf("CountKind = %d, want 2", n)
	}
	if n := l.CountKind(KindExport); n != 0 {
		t.Errorf("CountKind(export) = %d, want 0", n)
	}
}

func TestClockInjection(t *testing.T) {
	l := New()
	fixed := time.Date(2007, 8, 24, 0, 0, 0, 0, time.UTC) // the TR's date
	l.SetClock(func() time.Time { return fixed })
	l.Append(KindLogin, "bob", "session", "")
	if got := l.Snapshot()[0].Time; !got.Equal(fixed) {
		t.Errorf("time = %v, want %v", got, fixed)
	}
}

func TestSinkMirrorsEvents(t *testing.T) {
	l := New()
	var sb strings.Builder
	l.SetSink(&sb)
	l.Append(KindExportDenied, "app:evil", "bob-data", "residue {t1}")
	out := sb.String()
	for _, want := range []string{"export-denied", "app:evil", "bob-data", "residue {t1}"} {
		if !strings.Contains(out, want) {
			t.Errorf("sink output %q missing %q", out, want)
		}
	}
}

func TestAppendf(t *testing.T) {
	l := New()
	l.Appendf(KindQuota, "app:x", "cpu", "budget %d exhausted", 1000)
	if got := l.Snapshot()[0].Detail; got != "budget 1000 exhausted" {
		t.Errorf("Detail = %q", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 7, Time: time.Unix(0, 0).UTC(), Kind: KindExport, Actor: "gw", Subject: "bob", Detail: "ok"}
	s := e.String()
	for _, want := range []string{"#7", "export", "actor=gw", "subject=bob"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := New()
	const goroutines, per = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append(KindFlowAllowed, "p", "q", "")
			}
		}()
	}
	wg.Wait()
	if l.Len() != goroutines*per {
		t.Fatalf("Len = %d, want %d", l.Len(), goroutines*per)
	}
	// Sequence numbers must be dense 1..N.
	seen := make(map[uint64]bool)
	for _, e := range l.Snapshot() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
	for i := uint64(1); i <= goroutines*per; i++ {
		if !seen[i] {
			t.Fatalf("missing seq %d", i)
		}
	}
}
